//! The typed message codec: [`Message`] over the versioned frame layer.
//!
//! [`FramedStream`] is a thin typed layer over [`crate::frame`]: `send`
//! encodes a message into one frame, `recv` reads frames until it finds a
//! kind this build knows — unknown kinds are *skipped with a warning*
//! (forward compatibility between adjacent builds) instead of raised as a
//! hard [`NetError`]. Use [`FramedStream::handshake`] right after
//! connecting to agree on a protocol revision.

use std::net::TcpStream;

use crate::frame::{read_frame, write_frame, NetError, PROTOCOL_VERSION};

/// Little-endian cursor over a received frame body.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        if self.buf.len() < n {
            return Err(NetError::BadFrame(format!("truncated {what}")));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8, NetError> {
        Ok(self.take(1, what)?[0])
    }

    fn get_bool(&mut self, what: &str) -> Result<bool, NetError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(NetError::BadFrame(format!("{what}: bool byte {other}"))),
        }
    }

    fn get_u16_le(&mut self, what: &str) -> Result<u16, NetError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, NetError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64_le(&mut self, what: &str) -> Result<u64, NetError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a u64 appended to a message after its first release: a body
    /// from an older peer simply ends before the field, which decodes as
    /// zero. A *partially* present field still errors (corruption, not
    /// version skew).
    fn get_u64_le_or_zero(&mut self, what: &str) -> Result<u64, NetError> {
        if self.remaining() == 0 {
            return Ok(0);
        }
        self.get_u64_le(what)
    }

    fn get_f64_le(&mut self, what: &str) -> Result<f64, NetError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn get_f32_le(&mut self, what: &str) -> Result<f32, NetError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_str(&mut self, what: &str) -> Result<String, NetError> {
        let n = self.get_u32_le(what)? as usize;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| NetError::BadFrame(format!("{what}: invalid utf-8: {e}")))
    }

    fn get_u64s(&mut self, what: &str) -> Result<Vec<u64>, NetError> {
        let n = self.get_u32_le(what)? as usize;
        if self.remaining() < n * 8 {
            return Err(NetError::BadFrame(format!(
                "{what} claims {n} u64s but only {} bytes remain",
                self.remaining()
            )));
        }
        (0..n).map(|_| self.get_u64_le(what)).collect()
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u32(buf, vs.len() as u32);
    for &v in vs {
        put_u64(buf, v);
    }
}

fn put_f32s(buf: &mut Vec<u8>, data: &[f32]) {
    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
    buf.reserve(data.len() * 4);
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f32s(r: &mut Reader<'_>) -> Result<Vec<f32>, NetError> {
    let n = r.get_u32_le("vector length")? as usize;
    if r.remaining() < n * 4 {
        return Err(NetError::BadFrame(format!(
            "vector claims {n} floats but only {} bytes remain",
            r.remaining()
        )));
    }
    (0..n).map(|_| r.get_f32_le("vector")).collect()
}

/// One worker's live telemetry inside a [`Message::StatusDetail`] reply
/// (protocol ≥ 2): the coordinator's view of a connected worker, built
/// from the snapshots the worker piggybacks on its heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    /// The registered worker.
    pub worker_id: u64,
    /// Free-form worker name (host/pid by default).
    pub name: String,
    /// Jobs the worker has finished since connecting.
    pub jobs_done: u64,
    /// Slices the worker has finished since connecting.
    pub slices_done: u64,
    /// Realized throughput (jobs finished / seconds connected).
    pub jobs_per_s: f64,
    /// Median wall milliseconds per finished slice.
    pub slice_p50_ms: f64,
    /// 90th-percentile wall milliseconds per finished slice.
    pub slice_p90_ms: f64,
    /// Unknown-kind frames the worker's stream has skipped.
    pub skipped_unknown: u64,
}

/// Protocol messages exchanged between ComDML peers.
///
/// Two families share the wire format:
///
/// * the **training protocol** (kinds 0–8) — profile broadcasts, pairing
///   handshakes, activation streaming and model exchange;
/// * the **sweep-farm service** (kinds 9–27) — the version handshake plus
///   the coordinator/worker/client request–response vocabulary of the
///   distributed sweep farm (`comdml-exp`'s `exp_farm`). Farm payloads
///   that carry experiment objects (specs, job rows) travel as JSON text:
///   the farm's byte-identity guarantee rests on the exact rendered text,
///   so the wire never re-encodes them.
///
/// The encoding is a u16 kind tag (carried in the frame header) followed
/// by little-endian body fields; strings and vectors are length-prefixed.
/// Everything round-trips through [`Message::encode`] /
/// [`Message::decode`]. Kinds are append-only: never reuse a retired
/// number, so skip-unknown forward compatibility stays sound.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Initial identification after connecting.
    Hello {
        /// Sender's agent id.
        agent_id: u32,
    },
    /// Capability broadcast (Algorithm 1 line 2).
    Profile {
        /// Sender's agent id.
        agent_id: u32,
        /// Full-model processing speed in batches per second.
        batches_per_s: f64,
        /// Estimated solo training time in seconds.
        solo_time_s: f64,
    },
    /// Slow agent asks a fast agent to host `offload` layers.
    PairRequest {
        /// Requesting (slow) agent.
        slow_id: u32,
        /// Number of layers to offload.
        offload: u32,
    },
    /// Fast agent accepts the pairing.
    PairAccept {
        /// Accepting (fast) agent.
        fast_id: u32,
    },
    /// Fast agent declines (already paired).
    PairReject {
        /// Declining agent.
        fast_id: u32,
    },
    /// One batch of intermediate activations (slow → fast, §III-B), with
    /// the batch's labels so the fast side can evaluate its local loss
    /// (eq. 3 trains on `(z_n, y_n)` pairs).
    Activations {
        /// Batch index within the round.
        batch_idx: u32,
        /// Flattened activation values.
        data: Vec<f32>,
        /// Class labels of the batch (may be empty for inference traffic).
        labels: Vec<u32>,
    },
    /// Trained suffix parameters returned at the end of a round.
    SuffixParams {
        /// Flattened parameter values.
        data: Vec<f32>,
    },
    /// A model (or model chunk) exchanged during aggregation.
    ModelChunk {
        /// AllReduce step this chunk belongs to.
        step: u32,
        /// Chunk values.
        data: Vec<f32>,
    },
    /// End-of-round marker.
    Done,

    // ── Sweep-farm service (kinds 9+) ───────────────────────────────────
    /// Protocol-version handshake; both sides send it first and adopt the
    /// minimum (see [`FramedStream::handshake`]).
    Version {
        /// The sender's [`PROTOCOL_VERSION`].
        proto: u16,
    },
    /// Client → coordinator: queue a sweep (the spec's rendered JSON).
    SubmitSweep {
        /// `SweepSpec::render()` text.
        spec_json: String,
    },
    /// Coordinator → client: the sweep was accepted.
    SweepQueued {
        /// Handle for status/fetch calls.
        sweep_id: u64,
        /// Size of the expanded job matrix.
        total_jobs: u64,
    },
    /// Client → coordinator: how is sweep `sweep_id` doing?
    StatusRequest {
        /// The sweep to report on.
        sweep_id: u64,
    },
    /// Coordinator → client: live progress counters.
    StatusReport {
        /// The sweep reported on.
        sweep_id: u64,
        /// Job-matrix size.
        total: u64,
        /// Jobs with a folded result.
        done: u64,
        /// Jobs assigned to a live worker and not yet folded.
        in_flight: u64,
        /// Jobs waiting in the queue.
        queued: u64,
        /// Jobs re-queued from dead or hung workers (cumulative).
        requeued: u64,
        /// Workers currently connected to the coordinator.
        workers: u64,
        /// Whether every job has been folded.
        complete: bool,
        /// Seconds since submission (frozen at completion).
        elapsed_s: f64,
        /// Estimated seconds to completion at the realized pace
        /// (negative while no job has finished yet; 0 when complete).
        eta_s: f64,
        /// Slices re-queued after their worker died or hung (cumulative;
        /// appended in protocol 2, decoded as 0 from older peers).
        requeued_slices: u64,
        /// Slices re-queued specifically by the heartbeat reaper
        /// (cumulative; appended in protocol 2, decoded as 0).
        timed_out_slices: u64,
        /// Unknown-kind frames the coordinator has skipped across all its
        /// sessions (appended in protocol 2, decoded as 0).
        skipped_unknown: u64,
    },
    /// Client → coordinator: collect sweep `sweep_id`.
    FetchRequest {
        /// The sweep to collect.
        sweep_id: u64,
    },
    /// Coordinator → client: the collected sweep. When `complete`,
    /// `spec_json` + `rows_json` reassemble into a report byte-identical
    /// to a single-process run; otherwise both payloads are empty (poll
    /// status and retry).
    FetchReport {
        /// The sweep collected.
        sweep_id: u64,
        /// Whether every job has been folded.
        complete: bool,
        /// `SweepSpec::render()` text (empty if incomplete).
        spec_json: String,
        /// JSON array of job rows in global order (empty if incomplete).
        rows_json: String,
    },
    /// Worker → coordinator: register for work.
    WorkerHello {
        /// Free-form worker name (host/pid by default).
        name: String,
        /// The worker's local thread-pool width.
        threads: u32,
    },
    /// Coordinator → worker: registration accepted.
    WorkerWelcome {
        /// Id the worker uses in subsequent requests.
        worker_id: u64,
    },
    /// Worker → coordinator: give me a slice (sent whenever idle — this
    /// pull is what makes the farm work-stealing).
    WorkRequest {
        /// The registered worker.
        worker_id: u64,
    },
    /// Coordinator → worker: run these jobs.
    WorkSlice {
        /// The sweep the slice belongs to.
        sweep_id: u64,
        /// Handle for results/requeue bookkeeping.
        slice_id: u64,
        /// `SweepSpec::render()` text (workers cache per sweep).
        spec_json: String,
        /// Global job-matrix indices to run.
        indices: Vec<u64>,
    },
    /// Coordinator → worker: nothing queued; ask again after `retry_ms`.
    NoWork {
        /// Suggested poll delay.
        retry_ms: u32,
    },
    /// Worker → coordinator: one finished job row (streamed as each job
    /// completes, so partial results fold incrementally and double as
    /// liveness evidence).
    JobDone {
        /// The sweep the job belongs to.
        sweep_id: u64,
        /// The slice it was assigned under.
        slice_id: u64,
        /// Global job-matrix index.
        index: u64,
        /// `JobResult::to_value().render()` text.
        row_json: String,
    },
    /// Worker → coordinator: every job of the slice was reported.
    SliceDone {
        /// The sweep the slice belongs to.
        sweep_id: u64,
        /// The finished slice.
        slice_id: u64,
    },
    /// Worker → coordinator: periodic liveness signal (covers jobs whose
    /// single-job runtime exceeds the coordinator's requeue timeout).
    Heartbeat {
        /// The registered worker.
        worker_id: u64,
    },
    /// Coordinator → client/worker: the request failed.
    FarmError {
        /// Human-readable reason.
        detail: String,
    },
    /// Coordinator → worker: drain and exit (sent when the coordinator is
    /// shutting down).
    Shutdown,
    /// Worker → coordinator: telemetry snapshot piggybacked on heartbeats
    /// and slice completions (protocol ≥ 2; older coordinators skip it).
    WorkerMetrics {
        /// The registered worker.
        worker_id: u64,
        /// Jobs finished since connecting.
        jobs_done: u64,
        /// Slices finished since connecting.
        slices_done: u64,
        /// Median wall milliseconds per finished slice (0 until one
        /// finishes).
        slice_p50_ms: f64,
        /// 90th-percentile wall milliseconds per finished slice.
        slice_p90_ms: f64,
        /// Unknown-kind frames this worker's stream has skipped.
        skipped_unknown: u64,
    },
    /// Coordinator → client: per-worker telemetry rows following a
    /// [`Message::StatusReport`] (protocol ≥ 2; sent only when the
    /// negotiated revision carries it, so protocol-1 clients never block
    /// waiting for a frame that isn't coming).
    StatusDetail {
        /// The sweep reported on.
        sweep_id: u64,
        /// One row per connected worker, ordered by worker id.
        rows: Vec<WorkerRow>,
    },
}

impl Message {
    /// The wire kind tag of this message.
    pub fn kind(&self) -> u16 {
        match self {
            Message::Hello { .. } => 0,
            Message::Profile { .. } => 1,
            Message::PairRequest { .. } => 2,
            Message::PairAccept { .. } => 3,
            Message::PairReject { .. } => 4,
            Message::Activations { .. } => 5,
            Message::SuffixParams { .. } => 6,
            Message::ModelChunk { .. } => 7,
            Message::Done => 8,
            Message::Version { .. } => 9,
            Message::SubmitSweep { .. } => 10,
            Message::SweepQueued { .. } => 11,
            Message::StatusRequest { .. } => 12,
            Message::StatusReport { .. } => 13,
            Message::FetchRequest { .. } => 14,
            Message::FetchReport { .. } => 15,
            Message::WorkerHello { .. } => 16,
            Message::WorkerWelcome { .. } => 17,
            Message::WorkRequest { .. } => 18,
            Message::WorkSlice { .. } => 19,
            Message::NoWork { .. } => 20,
            Message::JobDone { .. } => 21,
            Message::SliceDone { .. } => 22,
            Message::Heartbeat { .. } => 23,
            Message::FarmError { .. } => 24,
            Message::Shutdown => 25,
            Message::WorkerMetrics { .. } => 26,
            Message::StatusDetail { .. } => 27,
        }
    }

    /// A short human-readable name (for error messages).
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::Profile { .. } => "Profile",
            Message::PairRequest { .. } => "PairRequest",
            Message::PairAccept { .. } => "PairAccept",
            Message::PairReject { .. } => "PairReject",
            Message::Activations { .. } => "Activations",
            Message::SuffixParams { .. } => "SuffixParams",
            Message::ModelChunk { .. } => "ModelChunk",
            Message::Done => "Done",
            Message::Version { .. } => "Version",
            Message::SubmitSweep { .. } => "SubmitSweep",
            Message::SweepQueued { .. } => "SweepQueued",
            Message::StatusRequest { .. } => "StatusRequest",
            Message::StatusReport { .. } => "StatusReport",
            Message::FetchRequest { .. } => "FetchRequest",
            Message::FetchReport { .. } => "FetchReport",
            Message::WorkerHello { .. } => "WorkerHello",
            Message::WorkerWelcome { .. } => "WorkerWelcome",
            Message::WorkRequest { .. } => "WorkRequest",
            Message::WorkSlice { .. } => "WorkSlice",
            Message::NoWork { .. } => "NoWork",
            Message::JobDone { .. } => "JobDone",
            Message::SliceDone { .. } => "SliceDone",
            Message::Heartbeat { .. } => "Heartbeat",
            Message::FarmError { .. } => "FarmError",
            Message::Shutdown => "Shutdown",
            Message::WorkerMetrics { .. } => "WorkerMetrics",
            Message::StatusDetail { .. } => "StatusDetail",
        }
    }

    /// Serializes the message body (the frame body *after* the kind tag).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Message::Hello { agent_id } => put_u32(&mut buf, *agent_id),
            Message::Profile { agent_id, batches_per_s, solo_time_s } => {
                put_u32(&mut buf, *agent_id);
                buf.extend_from_slice(&batches_per_s.to_le_bytes());
                buf.extend_from_slice(&solo_time_s.to_le_bytes());
            }
            Message::PairRequest { slow_id, offload } => {
                put_u32(&mut buf, *slow_id);
                put_u32(&mut buf, *offload);
            }
            Message::PairAccept { fast_id } | Message::PairReject { fast_id } => {
                put_u32(&mut buf, *fast_id)
            }
            Message::Activations { batch_idx, data, labels } => {
                put_u32(&mut buf, *batch_idx);
                put_f32s(&mut buf, data);
                put_u32(&mut buf, labels.len() as u32);
                for &y in labels {
                    put_u32(&mut buf, y);
                }
            }
            Message::SuffixParams { data } => put_f32s(&mut buf, data),
            Message::ModelChunk { step, data } => {
                put_u32(&mut buf, *step);
                put_f32s(&mut buf, data);
            }
            Message::Done | Message::Shutdown => {}
            Message::Version { proto } => buf.extend_from_slice(&proto.to_le_bytes()),
            Message::SubmitSweep { spec_json } => put_str(&mut buf, spec_json),
            Message::SweepQueued { sweep_id, total_jobs } => {
                put_u64(&mut buf, *sweep_id);
                put_u64(&mut buf, *total_jobs);
            }
            Message::StatusRequest { sweep_id } | Message::FetchRequest { sweep_id } => {
                put_u64(&mut buf, *sweep_id)
            }
            Message::StatusReport {
                sweep_id,
                total,
                done,
                in_flight,
                queued,
                requeued,
                workers,
                complete,
                elapsed_s,
                eta_s,
                requeued_slices,
                timed_out_slices,
                skipped_unknown,
            } => {
                put_u64(&mut buf, *sweep_id);
                put_u64(&mut buf, *total);
                put_u64(&mut buf, *done);
                put_u64(&mut buf, *in_flight);
                put_u64(&mut buf, *queued);
                put_u64(&mut buf, *requeued);
                put_u64(&mut buf, *workers);
                buf.push(u8::from(*complete));
                buf.extend_from_slice(&elapsed_s.to_le_bytes());
                buf.extend_from_slice(&eta_s.to_le_bytes());
                // Protocol-2 counters ride at the tail: decode ignores
                // trailing bytes, so protocol-1 peers read right past them.
                put_u64(&mut buf, *requeued_slices);
                put_u64(&mut buf, *timed_out_slices);
                put_u64(&mut buf, *skipped_unknown);
            }
            Message::FetchReport { sweep_id, complete, spec_json, rows_json } => {
                put_u64(&mut buf, *sweep_id);
                buf.push(u8::from(*complete));
                put_str(&mut buf, spec_json);
                put_str(&mut buf, rows_json);
            }
            Message::WorkerHello { name, threads } => {
                put_str(&mut buf, name);
                put_u32(&mut buf, *threads);
            }
            Message::WorkerWelcome { worker_id }
            | Message::WorkRequest { worker_id }
            | Message::Heartbeat { worker_id } => put_u64(&mut buf, *worker_id),
            Message::WorkSlice { sweep_id, slice_id, spec_json, indices } => {
                put_u64(&mut buf, *sweep_id);
                put_u64(&mut buf, *slice_id);
                put_str(&mut buf, spec_json);
                put_u64s(&mut buf, indices);
            }
            Message::NoWork { retry_ms } => put_u32(&mut buf, *retry_ms),
            Message::JobDone { sweep_id, slice_id, index, row_json } => {
                put_u64(&mut buf, *sweep_id);
                put_u64(&mut buf, *slice_id);
                put_u64(&mut buf, *index);
                put_str(&mut buf, row_json);
            }
            Message::SliceDone { sweep_id, slice_id } => {
                put_u64(&mut buf, *sweep_id);
                put_u64(&mut buf, *slice_id);
            }
            Message::FarmError { detail } => put_str(&mut buf, detail),
            Message::WorkerMetrics {
                worker_id,
                jobs_done,
                slices_done,
                slice_p50_ms,
                slice_p90_ms,
                skipped_unknown,
            } => {
                put_u64(&mut buf, *worker_id);
                put_u64(&mut buf, *jobs_done);
                put_u64(&mut buf, *slices_done);
                buf.extend_from_slice(&slice_p50_ms.to_le_bytes());
                buf.extend_from_slice(&slice_p90_ms.to_le_bytes());
                put_u64(&mut buf, *skipped_unknown);
            }
            Message::StatusDetail { sweep_id, rows } => {
                put_u64(&mut buf, *sweep_id);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u64(&mut buf, row.worker_id);
                    put_str(&mut buf, &row.name);
                    put_u64(&mut buf, row.jobs_done);
                    put_u64(&mut buf, row.slices_done);
                    buf.extend_from_slice(&row.jobs_per_s.to_le_bytes());
                    buf.extend_from_slice(&row.slice_p50_ms.to_le_bytes());
                    buf.extend_from_slice(&row.slice_p90_ms.to_le_bytes());
                    put_u64(&mut buf, row.skipped_unknown);
                }
            }
        }
        buf
    }

    /// Serializes kind tag + body (the full frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = self.kind().to_le_bytes().to_vec();
        buf.extend_from_slice(&self.encode_body());
        buf
    }

    /// Decodes a message body for a known `kind`. Returns `Ok(None)` for a
    /// kind this build does not know — the forward-compatible path callers
    /// skip with a warning.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any structural problem in a
    /// *known* kind's body.
    pub fn decode_body(kind: u16, body: &[u8]) -> Result<Option<Self>, NetError> {
        let mut r = Reader::new(body);
        let msg = match kind {
            0 => Message::Hello { agent_id: r.get_u32_le("Hello")? },
            1 => Message::Profile {
                agent_id: r.get_u32_le("Profile")?,
                batches_per_s: r.get_f64_le("Profile")?,
                solo_time_s: r.get_f64_le("Profile")?,
            },
            2 => Message::PairRequest {
                slow_id: r.get_u32_le("PairRequest")?,
                offload: r.get_u32_le("PairRequest")?,
            },
            3 => Message::PairAccept { fast_id: r.get_u32_le("PairAccept")? },
            4 => Message::PairReject { fast_id: r.get_u32_le("PairReject")? },
            5 => {
                let batch_idx = r.get_u32_le("Activations")?;
                let data = get_f32s(&mut r)?;
                let n = r.get_u32_le("Activations labels")? as usize;
                let raw = r.take(n * 4, "Activations labels")?;
                let labels = raw
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect();
                Message::Activations { batch_idx, data, labels }
            }
            6 => Message::SuffixParams { data: get_f32s(&mut r)? },
            7 => {
                let step = r.get_u32_le("ModelChunk")?;
                Message::ModelChunk { step, data: get_f32s(&mut r)? }
            }
            8 => Message::Done,
            9 => Message::Version { proto: r.get_u16_le("Version")? },
            10 => Message::SubmitSweep { spec_json: r.get_str("SubmitSweep")? },
            11 => Message::SweepQueued {
                sweep_id: r.get_u64_le("SweepQueued")?,
                total_jobs: r.get_u64_le("SweepQueued")?,
            },
            12 => Message::StatusRequest { sweep_id: r.get_u64_le("StatusRequest")? },
            13 => Message::StatusReport {
                sweep_id: r.get_u64_le("StatusReport")?,
                total: r.get_u64_le("StatusReport")?,
                done: r.get_u64_le("StatusReport")?,
                in_flight: r.get_u64_le("StatusReport")?,
                queued: r.get_u64_le("StatusReport")?,
                requeued: r.get_u64_le("StatusReport")?,
                workers: r.get_u64_le("StatusReport")?,
                complete: r.get_bool("StatusReport")?,
                elapsed_s: r.get_f64_le("StatusReport")?,
                eta_s: r.get_f64_le("StatusReport")?,
                requeued_slices: r.get_u64_le_or_zero("StatusReport")?,
                timed_out_slices: r.get_u64_le_or_zero("StatusReport")?,
                skipped_unknown: r.get_u64_le_or_zero("StatusReport")?,
            },
            14 => Message::FetchRequest { sweep_id: r.get_u64_le("FetchRequest")? },
            15 => Message::FetchReport {
                sweep_id: r.get_u64_le("FetchReport")?,
                complete: r.get_bool("FetchReport")?,
                spec_json: r.get_str("FetchReport")?,
                rows_json: r.get_str("FetchReport")?,
            },
            16 => Message::WorkerHello {
                name: r.get_str("WorkerHello")?,
                threads: r.get_u32_le("WorkerHello")?,
            },
            17 => Message::WorkerWelcome { worker_id: r.get_u64_le("WorkerWelcome")? },
            18 => Message::WorkRequest { worker_id: r.get_u64_le("WorkRequest")? },
            19 => Message::WorkSlice {
                sweep_id: r.get_u64_le("WorkSlice")?,
                slice_id: r.get_u64_le("WorkSlice")?,
                spec_json: r.get_str("WorkSlice")?,
                indices: r.get_u64s("WorkSlice indices")?,
            },
            20 => Message::NoWork { retry_ms: r.get_u32_le("NoWork")? },
            21 => Message::JobDone {
                sweep_id: r.get_u64_le("JobDone")?,
                slice_id: r.get_u64_le("JobDone")?,
                index: r.get_u64_le("JobDone")?,
                row_json: r.get_str("JobDone")?,
            },
            22 => Message::SliceDone {
                sweep_id: r.get_u64_le("SliceDone")?,
                slice_id: r.get_u64_le("SliceDone")?,
            },
            23 => Message::Heartbeat { worker_id: r.get_u64_le("Heartbeat")? },
            24 => Message::FarmError { detail: r.get_str("FarmError")? },
            25 => Message::Shutdown,
            26 => Message::WorkerMetrics {
                worker_id: r.get_u64_le("WorkerMetrics")?,
                jobs_done: r.get_u64_le("WorkerMetrics")?,
                slices_done: r.get_u64_le("WorkerMetrics")?,
                slice_p50_ms: r.get_f64_le("WorkerMetrics")?,
                slice_p90_ms: r.get_f64_le("WorkerMetrics")?,
                skipped_unknown: r.get_u64_le("WorkerMetrics")?,
            },
            27 => {
                let sweep_id = r.get_u64_le("StatusDetail")?;
                let n = r.get_u32_le("StatusDetail")? as usize;
                if r.remaining() < n * 8 {
                    return Err(NetError::BadFrame(format!(
                        "StatusDetail claims {n} rows but only {} bytes remain",
                        r.remaining()
                    )));
                }
                let rows = (0..n)
                    .map(|_| {
                        Ok(WorkerRow {
                            worker_id: r.get_u64_le("StatusDetail row")?,
                            name: r.get_str("StatusDetail row")?,
                            jobs_done: r.get_u64_le("StatusDetail row")?,
                            slices_done: r.get_u64_le("StatusDetail row")?,
                            jobs_per_s: r.get_f64_le("StatusDetail row")?,
                            slice_p50_ms: r.get_f64_le("StatusDetail row")?,
                            slice_p90_ms: r.get_f64_le("StatusDetail row")?,
                            skipped_unknown: r.get_u64_le("StatusDetail row")?,
                        })
                    })
                    .collect::<Result<Vec<_>, NetError>>()?;
                Message::StatusDetail { sweep_id, rows }
            }
            _ => return Ok(None),
        };
        Ok(Some(msg))
    }

    /// Decodes a full kind-tagged payload produced by [`Message::encode`],
    /// erroring on unknown kinds (the strict path; transports prefer
    /// [`Message::decode_body`]'s skip-friendly contract).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFrame`] on any structural problem or an
    /// unknown kind.
    pub fn decode(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < 2 {
            return Err(NetError::BadFrame("payload too short for a kind tag".into()));
        }
        let kind = u16::from_le_bytes([buf[0], buf[1]]);
        Self::decode_body(kind, &buf[2..])?
            .ok_or_else(|| NetError::BadFrame(format!("unknown kind {kind}")))
    }
}

/// A TCP stream carrying length-prefixed, kind-tagged [`Message`] frames.
///
/// Blocking: `send` and `recv` run on the calling thread. Peers that must
/// send and receive concurrently (e.g. ring AllReduce steps, or a farm
/// worker streaming results while its heartbeat thread ticks) either do so
/// from separate threads or split the stream with
/// [`FramedStream::try_clone`].
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    peer_version: Option<u16>,
    skipped_unknown: u64,
}

impl FramedStream {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream, peer_version: None, skipped_unknown: 0 }
    }

    /// Clones the underlying socket into an independent framed handle
    /// (shared kernel-level stream: one side may read while the other
    /// writes — the farm worker splits its connection this way).
    ///
    /// # Errors
    ///
    /// Propagates the socket duplication failure.
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(Self {
            stream: self.stream.try_clone()?,
            peer_version: self.peer_version,
            skipped_unknown: 0,
        })
    }

    /// Sends one message as a single frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure.
    pub fn send(&mut self, msg: &Message) -> Result<(), NetError> {
        write_frame(&mut self.stream, msg.kind(), &msg.encode_body())
    }

    /// Receives the next message *this build understands*.
    ///
    /// Frames of unknown kind — e.g. sent by a newer peer — are skipped
    /// instead of raised as an error, so adjacent builds interoperate as
    /// long as the messages they need are mutually known. Each skip bumps
    /// [`FramedStream::skipped_unknown`] and the `net.skipped_unknown`
    /// metrics counter, and logs at debug under `COMDML_LOG` (skipping is
    /// the *designed* forward-compatibility path, not an anomaly).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure,
    /// [`NetError::FrameTooLarge`] on a corrupt length prefix, or
    /// [`NetError::BadFrame`] if a *known* kind's body does not decode.
    pub fn recv(&mut self) -> Result<Message, NetError> {
        loop {
            let frame = read_frame(&mut self.stream)?;
            match Message::decode_body(frame.kind, &frame.body)? {
                Some(msg) => return Ok(msg),
                None => {
                    self.skipped_unknown += 1;
                    comdml_obs::counter_add("net.skipped_unknown", 1);
                    comdml_obs::debug!(
                        "comdml_net::codec",
                        "skipping unknown message kind {} ({} bytes) — peer speaks a \
                         newer protocol",
                        frame.kind,
                        frame.body.len()
                    );
                }
            }
        }
    }

    /// Receives a message, erroring unless it matches `expected_name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unexpected`] on a protocol violation, or any
    /// receive error.
    pub fn expect(&mut self, expected_name: &'static str) -> Result<Message, NetError> {
        let msg = self.recv()?;
        if msg.name() != expected_name {
            return Err(NetError::Unexpected { expected: expected_name, got: msg.name().into() });
        }
        Ok(msg)
    }

    /// Runs the symmetric version handshake: sends our
    /// [`PROTOCOL_VERSION`], receives the peer's, records it and returns
    /// the negotiated (minimum) revision. Call once, right after
    /// connecting, from both ends.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unexpected`] if the peer's first known message
    /// is not `Version`, or any send/receive error.
    pub fn handshake(&mut self) -> Result<u16, NetError> {
        self.send(&Message::Version { proto: PROTOCOL_VERSION })?;
        let Message::Version { proto } = self.expect("Version")? else {
            unreachable!("expect checked the variant")
        };
        self.peer_version = Some(proto);
        Ok(proto.min(PROTOCOL_VERSION))
    }

    /// The peer's protocol version, once [`FramedStream::handshake`] ran.
    pub fn peer_version(&self) -> Option<u16> {
        self.peer_version
    }

    /// How many unknown-kind frames [`FramedStream::recv`] has skipped.
    pub fn skipped_unknown(&self) -> u64 {
        self.skipped_unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn training_variants_round_trip() {
        round_trip(Message::Hello { agent_id: 7 });
        round_trip(Message::Profile { agent_id: 1, batches_per_s: 0.25, solo_time_s: 812.5 });
        round_trip(Message::PairRequest { slow_id: 3, offload: 37 });
        round_trip(Message::PairAccept { fast_id: 4 });
        round_trip(Message::PairReject { fast_id: 4 });
        round_trip(Message::Activations {
            batch_idx: 12,
            data: vec![1.5, -2.0, 0.0],
            labels: vec![0, 2, 1],
        });
        round_trip(Message::SuffixParams { data: vec![0.125; 33] });
        round_trip(Message::ModelChunk { step: 2, data: vec![] });
        round_trip(Message::Done);
    }

    #[test]
    fn farm_variants_round_trip() {
        round_trip(Message::Version { proto: 1 });
        round_trip(Message::SubmitSweep { spec_json: "{\"name\":\"x\"}".into() });
        round_trip(Message::SweepQueued { sweep_id: 3, total_jobs: 250 });
        round_trip(Message::StatusRequest { sweep_id: 3 });
        round_trip(Message::StatusReport {
            sweep_id: 3,
            total: 250,
            done: 100,
            in_flight: 8,
            queued: 142,
            requeued: 4,
            workers: 2,
            complete: false,
            elapsed_s: 1.5,
            eta_s: 2.25,
            requeued_slices: 1,
            timed_out_slices: 1,
            skipped_unknown: 0,
        });
        round_trip(Message::FetchRequest { sweep_id: 3 });
        round_trip(Message::FetchReport {
            sweep_id: 3,
            complete: true,
            spec_json: "{}".into(),
            rows_json: "[]".into(),
        });
        round_trip(Message::WorkerHello { name: "w0".into(), threads: 8 });
        round_trip(Message::WorkerWelcome { worker_id: 11 });
        round_trip(Message::WorkRequest { worker_id: 11 });
        round_trip(Message::WorkSlice {
            sweep_id: 3,
            slice_id: 9,
            spec_json: "{\"name\":\"x\"}".into(),
            indices: vec![0, 17, 34],
        });
        round_trip(Message::NoWork { retry_ms: 250 });
        round_trip(Message::JobDone {
            sweep_id: 3,
            slice_id: 9,
            index: 17,
            row_json: "{\"seed\":1}".into(),
        });
        round_trip(Message::SliceDone { sweep_id: 3, slice_id: 9 });
        round_trip(Message::Heartbeat { worker_id: 11 });
        round_trip(Message::FarmError { detail: "unknown sweep 5".into() });
        round_trip(Message::Shutdown);
        round_trip(Message::WorkerMetrics {
            worker_id: 11,
            jobs_done: 40,
            slices_done: 10,
            slice_p50_ms: 120.5,
            slice_p90_ms: 340.25,
            skipped_unknown: 1,
        });
        round_trip(Message::StatusDetail {
            sweep_id: 3,
            rows: vec![
                WorkerRow {
                    worker_id: 11,
                    name: "host/123".into(),
                    jobs_done: 40,
                    slices_done: 10,
                    jobs_per_s: 3.5,
                    slice_p50_ms: 120.5,
                    slice_p90_ms: 340.25,
                    skipped_unknown: 0,
                },
                WorkerRow {
                    worker_id: 12,
                    name: "host/456".into(),
                    jobs_done: 0,
                    slices_done: 0,
                    jobs_per_s: 0.0,
                    slice_p50_ms: 0.0,
                    slice_p90_ms: 0.0,
                    skipped_unknown: 2,
                },
            ],
        });
        round_trip(Message::StatusDetail { sweep_id: 9, rows: vec![] });
    }

    /// A protocol-1 `StatusReport` body ends right after `eta_s`; the
    /// protocol-2 decoder must read the appended counters as zero rather
    /// than erroring, or mixed-build farms break.
    #[test]
    fn status_report_without_trailing_counters_decodes_as_zeros() {
        let full = Message::StatusReport {
            sweep_id: 3,
            total: 250,
            done: 100,
            in_flight: 8,
            queued: 142,
            requeued: 4,
            workers: 2,
            complete: false,
            elapsed_s: 1.5,
            eta_s: 2.25,
            requeued_slices: 7,
            timed_out_slices: 5,
            skipped_unknown: 3,
        };
        let body = full.encode_body();
        let v1_body = &body[..body.len() - 24]; // strip the three appended u64s
        let decoded = Message::decode_body(13, v1_body).unwrap().unwrap();
        match decoded {
            Message::StatusReport {
                sweep_id,
                requeued_slices,
                timed_out_slices,
                skipped_unknown,
                ..
            } => {
                assert_eq!(sweep_id, 3);
                assert_eq!(requeued_slices, 0);
                assert_eq!(timed_out_slices, 0);
                assert_eq!(skipped_unknown, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A torn counter (partial trailing u64) is corruption, not skew.
        assert!(Message::decode_body(13, &body[..body.len() - 4]).is_err());
    }

    #[test]
    fn truncated_frames_error() {
        let full = Message::Profile { agent_id: 1, batches_per_s: 1.0, solo_time_s: 2.0 }.encode();
        for cut in 2..full.len() {
            assert!(Message::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_kind_is_strict_error_but_lenient_none() {
        let mut raw = 999u16.to_le_bytes().to_vec();
        raw.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(Message::decode(&raw), Err(NetError::BadFrame(_))));
        assert_eq!(Message::decode_body(999, &[0, 0, 0, 0]).unwrap(), None);
    }

    #[test]
    fn lying_vector_length_errors() {
        let mut raw = 6u16.to_le_bytes().to_vec(); // SuffixParams
        raw.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 floats
        raw.extend_from_slice(&1.0f32.to_le_bytes()); // provides one
        assert!(Message::decode(&raw).is_err());
    }

    #[test]
    fn lying_string_length_errors() {
        let mut raw = 24u16.to_le_bytes().to_vec(); // FarmError
        raw.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 bytes
        raw.extend_from_slice(b"oops");
        assert!(Message::decode(&raw).is_err());
    }

    #[test]
    fn framed_stream_round_trips_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
            s.send(&Message::Hello { agent_id: 42 }).unwrap();
            s.send(&Message::Activations {
                batch_idx: 0,
                data: vec![1.0; 1024],
                labels: vec![7; 16],
            })
            .unwrap();
            s.expect("Done").unwrap();
        });
        let (sock, _) = listener.accept().unwrap();
        let mut s = FramedStream::new(sock);
        assert_eq!(s.recv().unwrap(), Message::Hello { agent_id: 42 });
        match s.recv().unwrap() {
            Message::Activations { data, .. } => assert_eq!(data.len(), 1024),
            other => panic!("unexpected {other:?}"),
        }
        s.send(&Message::Done).unwrap();
        client.join().unwrap();
    }
}
