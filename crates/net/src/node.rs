use std::net::{TcpListener, TcpStream};

use crate::{ring_allreduce_tcp, FramedStream, Message, NetError};

/// One peer in an in-process ComDML ring cluster.
///
/// Holds the two ring connections (to the successor, from the predecessor)
/// plus its rank, and exposes the collective/pairing protocol operations.
#[derive(Debug)]
pub struct Node {
    rank: usize,
    k: usize,
    next: FramedStream,
    prev: FramedStream,
}

impl Node {
    /// This node's ring rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.k
    }

    /// Runs one ring AllReduce over the cluster, returning the element-wise
    /// mean of all ranks' `values`.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors; all ranks must call this with
    /// equal-length vectors.
    pub fn allreduce(&mut self, values: Vec<f32>) -> Result<Vec<f32>, NetError> {
        ring_allreduce_tcp(self.rank, self.k, values, &mut self.next, &mut self.prev)
    }

    /// Sends a message to the ring successor.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure.
    pub fn send_next(&mut self, msg: &Message) -> Result<(), NetError> {
        self.next.send(msg)
    }

    /// Receives a message from the ring predecessor.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failure.
    pub fn recv_prev(&mut self) -> Result<Message, NetError> {
        self.prev.recv()
    }
}

/// Stands up `k` connected peers on localhost, wired in a ring
/// (rank `r` connects to rank `(r + 1) % k`).
///
/// # Errors
///
/// Propagates bind/connect failures and handshake protocol errors.
pub fn spawn_ring(k: usize) -> Result<Vec<Node>, NetError> {
    assert!(k >= 2, "a ring needs at least two nodes");
    let mut listeners = Vec::with_capacity(k);
    let mut addrs = Vec::with_capacity(k);
    for _ in 0..k {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }

    // Each rank dials its successor on a helper thread, identifying itself
    // with Hello, while the main thread accepts the inbound predecessors.
    let mut connect_tasks = Vec::with_capacity(k);
    for (r, _) in addrs.iter().enumerate() {
        let target = addrs[(r + 1) % k];
        connect_tasks.push(std::thread::spawn(move || {
            let mut s = FramedStream::new(TcpStream::connect(target)?);
            s.send(&Message::Hello { agent_id: r as u32 })?;
            Ok::<FramedStream, NetError>(s)
        }));
    }

    // Each rank accepts exactly one inbound connection: its predecessor.
    let mut prev_streams: Vec<Option<FramedStream>> = (0..k).map(|_| None).collect();
    for (r, listener) in listeners.iter().enumerate() {
        let (sock, _) = listener.accept()?;
        let mut s = FramedStream::new(sock);
        let hello = s.expect("Hello")?;
        let Message::Hello { agent_id } = hello else { unreachable!("expect checked") };
        let expected_pred = (r + k - 1) % k;
        if agent_id as usize != expected_pred {
            return Err(NetError::Unexpected {
                expected: "hello from ring predecessor",
                got: format!("rank {agent_id} on listener {r}"),
            });
        }
        prev_streams[r] = Some(s);
    }

    let mut nodes = Vec::with_capacity(k);
    for (r, task) in connect_tasks.into_iter().enumerate() {
        let next = task.join().map_err(|e| {
            NetError::Io(std::io::Error::other(format!("connect task panicked: {e:?}")))
        })??;
        let prev = prev_streams[r].take().expect("accepted above");
        nodes.push(Node { rank: r, k, next, prev });
    }
    Ok(nodes)
}

/// Result of a pairing handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOutcome {
    /// The fast agent accepted; split training may begin.
    Accepted {
        /// The helper's id.
        fast_id: u32,
    },
    /// The fast agent declined (already paired).
    Rejected {
        /// The decliner's id.
        fast_id: u32,
    },
}

/// Runs the slow-agent side of the pairing handshake (Algorithm 1 lines
/// 10–14 as a wire exchange): send a `PairRequest` for `offload` layers and
/// await the accept/reject.
///
/// # Errors
///
/// Returns [`NetError::Unexpected`] if the peer violates the protocol, or
/// any socket error.
pub fn pairing_handshake(
    to_fast: &mut FramedStream,
    slow_id: u32,
    offload: u32,
) -> Result<PairOutcome, NetError> {
    to_fast.send(&Message::PairRequest { slow_id, offload })?;
    match to_fast.recv()? {
        Message::PairAccept { fast_id } => Ok(PairOutcome::Accepted { fast_id }),
        Message::PairReject { fast_id } => Ok(PairOutcome::Rejected { fast_id }),
        other => Err(NetError::Unexpected {
            expected: "PairAccept or PairReject",
            got: other.name().into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_over_tcp_equals_mean() {
        let cluster = spawn_ring(4).unwrap();
        let handles: Vec<_> = cluster
            .into_iter()
            .map(|mut node| {
                std::thread::spawn(move || {
                    let params = vec![node.rank() as f32; 10];
                    node.allreduce(params).unwrap()
                })
            })
            .collect();
        for h in handles {
            let avg = h.join().unwrap();
            for v in avg {
                assert!((v - 1.5).abs() < 1e-6, "mean of 0..4 is 1.5, got {v}");
            }
        }
    }

    #[test]
    fn ring_allreduce_with_odd_cluster() {
        let cluster = spawn_ring(5).unwrap();
        let handles: Vec<_> = cluster
            .into_iter()
            .map(|mut node| {
                std::thread::spawn(move || {
                    let params: Vec<f32> = (0..7).map(|i| (node.rank() * 7 + i) as f32).collect();
                    node.allreduce(params).unwrap()
                })
            })
            .collect();
        let first = handles.into_iter().next().unwrap().join().unwrap();
        // Rank means: element j = mean over r of (7r + j) = 14 + j.
        for (j, v) in first.iter().enumerate() {
            assert!((v - (14.0 + j as f32)).abs() < 1e-4, "element {j}: {v}");
        }
    }

    #[test]
    fn pairing_handshake_accept_and_reject() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fast = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut s = FramedStream::new(sock);
            // First request accepted, second rejected.
            let m = s.expect("PairRequest").unwrap();
            assert_eq!(m, Message::PairRequest { slow_id: 0, offload: 37 });
            s.send(&Message::PairAccept { fast_id: 1 }).unwrap();
            s.expect("PairRequest").unwrap();
            s.send(&Message::PairReject { fast_id: 1 }).unwrap();
        });
        let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
        let first = pairing_handshake(&mut s, 0, 37).unwrap();
        assert_eq!(first, PairOutcome::Accepted { fast_id: 1 });
        let second = pairing_handshake(&mut s, 0, 19).unwrap();
        assert_eq!(second, PairOutcome::Rejected { fast_id: 1 });
        fast.join().unwrap();
    }

    #[test]
    fn activation_streaming_between_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fast = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut s = FramedStream::new(sock);
            let mut received = 0usize;
            loop {
                match s.recv().unwrap() {
                    Message::Activations { batch_idx, data, labels } => {
                        assert_eq!(batch_idx as usize, received);
                        assert_eq!(data.len(), 64);
                        assert_eq!(labels.len(), 4);
                        received += 1;
                    }
                    Message::Done => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            // Return the trained suffix parameters.
            s.send(&Message::SuffixParams { data: vec![0.5; 8] }).unwrap();
            received
        });
        let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
        for b in 0..5u32 {
            s.send(&Message::Activations {
                batch_idx: b,
                data: vec![b as f32; 64],
                labels: vec![b; 4],
            })
            .unwrap();
        }
        s.send(&Message::Done).unwrap();
        let suffix = s.expect("SuffixParams").unwrap();
        assert_eq!(suffix, Message::SuffixParams { data: vec![0.5; 8] });
        assert_eq!(fast.join().unwrap(), 5);
    }
}
