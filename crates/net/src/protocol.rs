//! Reusable protocol sessions for local-loss split training over sockets.
//!
//! [`SlowSideSession`] and [`FastSideSession`] implement the two halves of
//! §III-B's data path as library objects: the slow side trains its prefix
//! against the auxiliary loss while streaming detached activations; the
//! fast side trains the offloaded suffix on the incoming stream and ships
//! the parameters back at round end. `tests/net_full_round.rs` and the
//! examples drive complete multi-round runs through these sessions.

use comdml_nn::{AuxHead, CrossEntropyLoss, NnError, Sequential};
use comdml_tensor::{ParamVec, SgdMomentum, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{FramedStream, Message, NetError};

/// Errors from protocol sessions: either the wire or the math failed.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure.
    Net(NetError),
    /// Training-engine failure.
    Nn(NnError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Net(e) => write!(f, "transport: {e}"),
            ProtocolError::Nn(e) => write!(f, "training: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<NetError> for ProtocolError {
    fn from(e: NetError) -> Self {
        ProtocolError::Net(e)
    }
}

impl From<NnError> for ProtocolError {
    fn from(e: NnError) -> Self {
        ProtocolError::Nn(e)
    }
}

impl From<comdml_tensor::TensorError> for ProtocolError {
    fn from(e: comdml_tensor::TensorError) -> Self {
        ProtocolError::Nn(NnError::from(e))
    }
}

/// The slow agent's half of a split-training connection: owns the model
/// prefix and auxiliary head, trains them locally, and streams detached
/// activations to the paired fast agent.
#[derive(Debug)]
pub struct SlowSideSession {
    prefix: Sequential,
    aux: Option<AuxHead>,
    opt: SgdMomentum,
    num_classes: usize,
    rng: StdRng,
    suffix_shapes: Vec<Vec<usize>>,
}

impl SlowSideSession {
    /// Creates the session from the local prefix and the *shapes* of the
    /// offloaded suffix (needed to reassemble returned parameters).
    pub fn new(
        prefix: Sequential,
        suffix_shapes: Vec<Vec<usize>>,
        num_classes: usize,
        lr: f32,
        momentum: f32,
        seed: u64,
    ) -> Self {
        Self {
            prefix,
            aux: None,
            opt: SgdMomentum::new(lr, momentum),
            num_classes,
            rng: StdRng::seed_from_u64(seed),
            suffix_shapes,
        }
    }

    /// The local prefix model.
    pub fn prefix(&self) -> &Sequential {
        &self.prefix
    }

    /// Mutable access to the prefix (e.g. to install aggregated weights).
    pub fn prefix_mut(&mut self) -> &mut Sequential {
        &mut self.prefix
    }

    /// Trains one round over `batches`, streaming each batch's activation
    /// (with labels) to the fast side, then awaits the trained suffix.
    ///
    /// Returns `(mean auxiliary loss, suffix parameters)`.
    ///
    /// # Errors
    ///
    /// Propagates transport and training errors.
    pub fn train_round(
        &mut self,
        stream: &mut FramedStream,
        batches: &[(Tensor, Vec<usize>)],
    ) -> Result<(f32, Vec<Tensor>), ProtocolError> {
        let mut total = 0.0f32;
        for (b, (x, y)) in batches.iter().enumerate() {
            let z = self.prefix.forward(x)?;
            if self.aux.is_none() {
                self.aux =
                    Some(AuxHead::for_activation(z.shape(), self.num_classes, &mut self.rng)?);
            }
            let aux = self.aux.as_mut().expect("initialized above");
            let logits = aux.forward(&z)?;
            let (loss, grad) = CrossEntropyLoss::evaluate(&logits, y)?;
            total += loss;
            let gz = aux.backward(&grad)?;
            self.prefix.backward(&gz)?;

            let mut params = self.prefix.parameters();
            params.extend(aux.parameters());
            let mut grads = self.prefix.gradients();
            grads.extend(aux.gradients());
            self.opt.step(&mut params, &grads)?;
            let n = self.prefix.num_param_tensors();
            self.prefix.set_parameters(&params[..n])?;
            aux.set_parameters(&params[n..])?;

            stream.send(&Message::Activations {
                batch_idx: b as u32,
                data: z.data().to_vec(),
                labels: y.iter().map(|&v| v as u32).collect(),
            })?;
        }
        stream.send(&Message::Done)?;

        let Message::SuffixParams { data } = stream.expect("SuffixParams")? else {
            unreachable!("expect checked the variant")
        };
        let suffix = ParamVec::from_parts(data, self.suffix_shapes.clone())
            .map_err(NnError::from)?
            .unflatten()
            .map_err(NnError::from)?;
        let mean = if batches.is_empty() { 0.0 } else { total / batches.len() as f32 };
        Ok((mean, suffix))
    }
}

/// The fast agent's half: owns the offloaded suffix and trains it on the
/// incoming activation stream.
#[derive(Debug)]
pub struct FastSideSession {
    suffix: Sequential,
    opt: SgdMomentum,
    activation_shape: Vec<usize>,
}

impl FastSideSession {
    /// Creates the session from the guest suffix and the per-sample
    /// activation shape at the cut (without the batch dimension), e.g.
    /// `[16, 4, 4]` for a conv cut or `[64]` for a dense cut.
    ///
    /// # Panics
    ///
    /// Panics if `activation_shape` is empty.
    pub fn new(suffix: Sequential, activation_shape: Vec<usize>, lr: f32, momentum: f32) -> Self {
        assert!(!activation_shape.is_empty(), "activation shape must be known");
        Self { suffix, opt: SgdMomentum::new(lr, momentum), activation_shape }
    }

    /// The guest suffix model.
    pub fn suffix(&self) -> &Sequential {
        &self.suffix
    }

    /// Mutable access to the suffix (e.g. to sync aggregated weights).
    pub fn suffix_mut(&mut self) -> &mut Sequential {
        &mut self.suffix
    }

    /// Serves one round: trains on every incoming activation batch until
    /// `Done`, then returns the trained suffix parameters to the peer.
    ///
    /// `on_batch` runs after each guest batch — the hook where the fast
    /// agent interleaves its *own* local training (§III-B trains both in
    /// parallel). Returns `(batches served, mean fast-side loss)`.
    ///
    /// # Errors
    ///
    /// Propagates transport and training errors; protocol violations (an
    /// unexpected message mid-stream) surface as [`NetError::Unexpected`].
    pub fn serve_round<F>(
        &mut self,
        stream: &mut FramedStream,
        mut on_batch: F,
    ) -> Result<(usize, f32), ProtocolError>
    where
        F: FnMut(usize),
    {
        let mut served = 0usize;
        let mut total = 0.0f32;
        loop {
            match stream.recv()? {
                Message::Activations { data, labels, .. } => {
                    let batch = labels.len().max(1);
                    let mut shape = vec![batch];
                    shape.extend_from_slice(&self.activation_shape);
                    let z = Tensor::from_vec(data, &shape).map_err(NnError::from)?;
                    let y: Vec<usize> = labels.iter().map(|&v| v as usize).collect();
                    let out = self.suffix.forward(&z)?;
                    let (loss, grad) = CrossEntropyLoss::evaluate(&out, &y)?;
                    total += loss;
                    self.suffix.backward(&grad)?;
                    let mut params = self.suffix.parameters();
                    let grads = self.suffix.gradients();
                    self.opt.step(&mut params, &grads)?;
                    self.suffix.set_parameters(&params)?;
                    on_batch(served);
                    served += 1;
                }
                Message::Done => break,
                other => {
                    return Err(NetError::Unexpected {
                        expected: "Activations or Done",
                        got: other.name().into(),
                    }
                    .into())
                }
            }
        }
        let flat = ParamVec::flatten(&self.suffix.parameters()).values().to_vec();
        stream.send(&Message::SuffixParams { data: flat })?;
        Ok((served, if served == 0 { 0.0 } else { total / served as f32 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_nn::models;
    use std::net::{TcpListener, TcpStream};

    fn split_model(seed: u64, offload: usize) -> (Sequential, Sequential) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = models::mlp(&[8, 16, 16, 4], &mut rng);
        let n = model.len();
        model.split_at(n - offload).unwrap()
    }

    fn toy_batches(n: usize, seed: u64) -> Vec<(Tensor, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = Tensor::randn(&[12, 8], 1.0, &mut rng);
                // Learnable rule: label from the sign of the first feature.
                let y = (0..12).map(|i| if x.data()[i * 8] > 0.0 { 1usize } else { 0 }).collect();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn sessions_train_both_sides_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let offload = 2;

        let fast = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut stream = FramedStream::new(sock);
            let (_, suffix) = split_model(5, offload);
            // MLP cut before the last dense+relu: activation is [16].
            let mut session = FastSideSession::new(suffix, vec![16], 0.05, 0.9);
            let mut own_batches = 0usize;
            let mut losses = Vec::new();
            for _ in 0..6 {
                let (served, loss) =
                    session.serve_round(&mut stream, |_| own_batches += 1).unwrap();
                assert_eq!(served, 4);
                losses.push(loss);
            }
            (losses, own_batches)
        });

        let mut stream = FramedStream::new(TcpStream::connect(addr).unwrap());
        let (prefix, suffix) = split_model(5, offload);
        let shapes = suffix.parameters().iter().map(|p| p.shape().to_vec()).collect();
        let mut session = SlowSideSession::new(prefix, shapes, 4, 0.05, 0.9, 1);
        let batches = toy_batches(4, 9);
        let mut slow_losses = Vec::new();
        for _ in 0..6 {
            let (loss, suffix_params) = session.train_round(&mut stream, &batches).unwrap();
            slow_losses.push(loss);
            assert!(!suffix_params.is_empty());
        }

        let (fast_losses, own_batches) = fast.join().unwrap();
        assert!(slow_losses.last().unwrap() < &slow_losses[0], "{slow_losses:?}");
        assert!(fast_losses.last().unwrap() < &fast_losses[0], "{fast_losses:?}");
        assert_eq!(own_batches, 24, "the hook interleaves the fast agent's own work");
    }

    #[test]
    fn fast_session_rejects_protocol_violation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let fast = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut stream = FramedStream::new(sock);
            let (_, suffix) = split_model(5, 2);
            let mut session = FastSideSession::new(suffix, vec![16], 0.05, 0.9);
            session.serve_round(&mut stream, |_| {})
        });

        let mut stream = FramedStream::new(TcpStream::connect(addr).unwrap());
        // A pairing request mid-stream is a violation.
        stream.send(&Message::PairRequest { slow_id: 0, offload: 1 }).unwrap();
        let err = fast.join().unwrap().unwrap_err();
        assert!(matches!(err, ProtocolError::Net(NetError::Unexpected { .. })), "{err}");
    }
}
