//! The versioned, length-prefixed wire frame layer.
//!
//! Everything ComDML peers exchange travels as a **frame**:
//!
//! ```text
//! ┌──────────────┬───────────────┬─────────────────┐
//! │ u32 LE len   │ u16 LE kind   │ body (len-2 B)  │
//! └──────────────┴───────────────┴─────────────────┘
//! ```
//!
//! The `kind` names the message type ([`crate::Message`] assigns them);
//! the body layout is owned by the typed codec above this layer. Keeping
//! the kind *in the frame header* rather than the body is what makes the
//! protocol forward-compatible: a peer can measure and skip a frame whose
//! kind it does not know without understanding a single body byte — see
//! [`crate::FramedStream::recv`], which warns and skips instead of
//! erroring, so coordinator and workers from adjacent builds interoperate.
//!
//! Peers agree on a protocol revision with a [`PROTOCOL_VERSION`]
//! handshake (both sides send their version as the first frame and adopt
//! the minimum — [`crate::FramedStream::handshake`]). The version gates
//! *semantics*; unknown-kind skipping covers pure message-set additions,
//! which is the common case between adjacent builds.

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// The protocol revision this build speaks.
///
/// History:
/// * **1** — first versioned format (u16 frame kinds, version handshake,
///   skip-unknown forward compatibility; adds the sweep-farm
///   request/response kinds).
/// * **2** — farm telemetry: `WorkerMetrics` / `StatusDetail` kinds and
///   the counters appended to `StatusReport` (older peers decode them as
///   zero — trailing bytes are ignored — and skip the new kinds).
pub const PROTOCOL_VERSION: u16 = 2;

/// Maximum accepted frame size (a full ResNet-110 model is ~7 MB; leave
/// generous headroom).
pub(crate) const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Errors produced by the wire protocol.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer sent a frame that does not decode.
    BadFrame(String),
    /// A frame exceeded the sanity limit (corrupted length prefix).
    FrameTooLarge(usize),
    /// The protocol state machine received an unexpected message.
    Unexpected {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What actually arrived.
        got: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::BadFrame(why) => write!(f, "undecodable frame: {why}"),
            NetError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            NetError::Unexpected { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One raw frame off the wire: the kind tag plus the undecoded body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Message-kind tag (see [`crate::Message`] for assigned values).
    pub kind: u16,
    /// Body bytes; layout owned by the typed codec.
    pub body: Vec<u8>,
}

/// Writes one frame: `u32 LE (2 + body.len())`, `u16 LE kind`, body.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(w: &mut impl Write, kind: u16, body: &[u8]) -> Result<(), NetError> {
    let len = 2 + body.len();
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&kind.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame (any kind — the caller decides whether it understands
/// it).
///
/// # Errors
///
/// Returns [`NetError::Io`] on socket failure, [`NetError::FrameTooLarge`]
/// on a corrupt length prefix, or [`NetError::BadFrame`] if the frame is
/// too short to carry a kind tag.
pub fn read_frame(r: &mut impl Read) -> Result<RawFrame, NetError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(NetError::FrameTooLarge(len));
    }
    if len < 2 {
        return Err(NetError::BadFrame(format!("frame of {len} bytes cannot carry a kind tag")));
    }
    let mut kind_bytes = [0u8; 2];
    r.read_exact(&mut kind_bytes)?;
    let mut body = vec![0u8; len - 2];
    r.read_exact(&mut body)?;
    Ok(RawFrame { kind: u16::from_le_bytes(kind_bytes), body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, &[1, 2, 3]).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame, RawFrame { kind: 7, body: vec![1, 2, 3] });
    }

    #[test]
    fn empty_body_is_legal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, &[]).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame, RawFrame { kind: 42, body: vec![] });
    }

    #[test]
    fn short_or_oversized_length_prefixes_error() {
        // len=1 cannot carry the u16 kind.
        let raw = [1u8, 0, 0, 0, 9];
        assert!(matches!(read_frame(&mut raw.as_slice()), Err(NetError::BadFrame(_))));
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(read_frame(&mut huge.as_slice()), Err(NetError::FrameTooLarge(_))));
    }
}
