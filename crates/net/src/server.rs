//! A small threaded TCP service loop.
//!
//! [`serve`] binds a listener and runs an accept loop on a background
//! thread, handing every inbound connection (already wrapped in a
//! [`FramedStream`]) to a caller-supplied session handler on its own
//! thread — the substrate the sweep-farm coordinator builds its
//! request/response session loop on. The returned [`ServerHandle`] owns a
//! stop flag that both the accept loop and the handlers observe, so a
//! service can drain politely (e.g. answer the next poll with `Shutdown`)
//! instead of vanishing mid-conversation.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::FramedStream;

/// How often the accept loop polls the stop flag while no connection is
/// pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running [`serve`] loop: its bound address, stop flag and accept
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared stop flag (the same one handlers receive).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Signals the accept loop and all session handlers to wind down.
    /// Sessions blocked on a read finish when their peer disconnects.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops (if not already stopped) and joins the accept thread.
    /// Session threads are detached; they exit when their connection
    /// closes or their handler observes the stop flag.
    pub fn shutdown(mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves every inbound
/// connection with `handler` on a dedicated thread.
///
/// The handler receives the framed connection, the peer address and the
/// shared stop flag; it owns the session for the connection's lifetime.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<H>(addr: &str, handler: H) -> std::io::Result<ServerHandle>
where
    H: Fn(FramedStream, SocketAddr, &AtomicBool) + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    // Non-blocking accept so the loop can observe the stop flag.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let accept_thread = std::thread::spawn(move || {
        while !loop_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((sock, peer)) => {
                    // Sessions themselves block on reads as usual.
                    if sock.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let handler = Arc::clone(&handler);
                    let session_stop = Arc::clone(&loop_stop);
                    std::thread::spawn(move || {
                        handler(FramedStream::new(sock), peer, &session_stop);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => break,
            }
        }
    });
    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;
    use std::net::TcpStream;

    #[test]
    fn serves_concurrent_echo_sessions() {
        let handle = serve("127.0.0.1:0", |mut s, _peer, _stop| {
            while let Ok(msg) = s.recv() {
                if s.send(&msg).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let addr = handle.local_addr();
        let clients: Vec<_> = (0..3u32)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut s = FramedStream::new(TcpStream::connect(addr).unwrap());
                    for i in 0..5 {
                        s.send(&Message::Hello { agent_id: id * 100 + i }).unwrap();
                        assert_eq!(s.recv().unwrap(), Message::Hello { agent_id: id * 100 + i });
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        handle.shutdown();
    }

    #[test]
    fn stop_flag_reaches_sessions() {
        let handle = serve("127.0.0.1:0", |mut s, _peer, stop| {
            while let Ok(msg) = s.recv() {
                let reply =
                    if stop.load(Ordering::SeqCst) { Message::Shutdown } else { msg.clone() };
                if s.send(&reply).is_err() {
                    break;
                }
            }
        })
        .unwrap();
        let mut s = FramedStream::new(TcpStream::connect(handle.local_addr()).unwrap());
        s.send(&Message::Done).unwrap();
        assert_eq!(s.recv().unwrap(), Message::Done);
        handle.stop();
        s.send(&Message::Done).unwrap();
        assert_eq!(s.recv().unwrap(), Message::Shutdown);
        handle.shutdown();
    }
}
