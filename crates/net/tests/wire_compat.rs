//! Wire-protocol compatibility properties:
//!
//! * every message kind round-trips over a real TCP connection;
//! * the version handshake negotiates the minimum revision both ways;
//! * frames of unknown kind are **skipped with a warning**, not raised as
//!   errors — a peer from an adjacent (newer) build that interleaves
//!   future message kinds still interoperates.

use std::net::{TcpListener, TcpStream};

use comdml_net::frame::write_frame;
use comdml_net::{FramedStream, Message, PROTOCOL_VERSION};

fn raw_tcp_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
    let (server_sock, _) = listener.accept().unwrap();
    (server_sock, client.join().unwrap())
}

fn tcp_pair() -> (FramedStream, FramedStream) {
    let (s, c) = raw_tcp_pair();
    (FramedStream::new(s), FramedStream::new(c))
}

fn farm_vocabulary() -> Vec<Message> {
    vec![
        Message::Version { proto: PROTOCOL_VERSION },
        Message::SubmitSweep { spec_json: "{\"name\":\"smoke\"}".into() },
        Message::SweepQueued { sweep_id: 1, total_jobs: 6 },
        Message::StatusRequest { sweep_id: 1 },
        Message::StatusReport {
            sweep_id: 1,
            total: 6,
            done: 2,
            in_flight: 2,
            queued: 2,
            requeued: 1,
            workers: 2,
            complete: false,
            elapsed_s: 0.5,
            eta_s: 1.0,
            requeued_slices: 1,
            timed_out_slices: 0,
            skipped_unknown: 0,
        },
        Message::FetchRequest { sweep_id: 1 },
        Message::FetchReport {
            sweep_id: 1,
            complete: false,
            spec_json: String::new(),
            rows_json: String::new(),
        },
        Message::WorkerHello { name: "worker-a".into(), threads: 4 },
        Message::WorkerWelcome { worker_id: 7 },
        Message::WorkRequest { worker_id: 7 },
        Message::WorkSlice {
            sweep_id: 1,
            slice_id: 3,
            spec_json: "{\"name\":\"smoke\"}".into(),
            indices: vec![1, 3, 5],
        },
        Message::NoWork { retry_ms: 100 },
        Message::JobDone { sweep_id: 1, slice_id: 3, index: 5, row_json: "{\"seed\":5}".into() },
        Message::SliceDone { sweep_id: 1, slice_id: 3 },
        Message::Heartbeat { worker_id: 7 },
        Message::FarmError { detail: "unknown sweep 9".into() },
        Message::Shutdown,
        Message::WorkerMetrics {
            worker_id: 7,
            jobs_done: 12,
            slices_done: 3,
            slice_p50_ms: 85.0,
            slice_p90_ms: 140.0,
            skipped_unknown: 0,
        },
        Message::StatusDetail {
            sweep_id: 1,
            rows: vec![comdml_net::WorkerRow {
                worker_id: 7,
                name: "worker-a".into(),
                jobs_done: 12,
                slices_done: 3,
                jobs_per_s: 2.0,
                slice_p50_ms: 85.0,
                slice_p90_ms: 140.0,
                skipped_unknown: 0,
            }],
        },
    ]
}

#[test]
fn every_kind_round_trips_over_tcp() {
    let (mut server, mut client) = tcp_pair();
    let mut messages = farm_vocabulary();
    messages.push(Message::Hello { agent_id: 1 });
    messages.push(Message::ModelChunk { step: 0, data: vec![0.5; 8] });
    let expected = messages.clone();
    let sender = std::thread::spawn(move || {
        for m in &messages {
            client.send(m).unwrap();
        }
        client
    });
    for want in &expected {
        assert_eq!(&server.recv().unwrap(), want);
    }
    sender.join().unwrap();
}

#[test]
fn handshake_negotiates_symmetrically() {
    let (mut server, mut client) = tcp_pair();
    let t = std::thread::spawn(move || {
        let negotiated = client.handshake().unwrap();
        (negotiated, client.peer_version())
    });
    let negotiated = server.handshake().unwrap();
    assert_eq!(negotiated, PROTOCOL_VERSION);
    assert_eq!(server.peer_version(), Some(PROTOCOL_VERSION));
    let (client_negotiated, client_peer) = t.join().unwrap();
    assert_eq!(client_negotiated, PROTOCOL_VERSION);
    assert_eq!(client_peer, Some(PROTOCOL_VERSION));
}

/// A "future build" sends a frame kind this build has never heard of,
/// then a message it *does* know. `recv` must deliver the known message
/// and count one skip — not error.
#[test]
fn unknown_kinds_are_skipped_not_fatal() {
    let (server_sock, client_sock) = raw_tcp_pair();
    let mut server = FramedStream::new(server_sock);
    let t = std::thread::spawn(move || {
        // Simulate a newer peer: an unknown kind with an arbitrary body,
        // written straight to the socket as a well-formed frame...
        let mut raw = client_sock;
        write_frame(&mut raw, 0x7fff, &[1, 2, 3, 4, 5]).unwrap();
        // ...then a perfectly ordinary known message.
        let mut framed = FramedStream::new(raw);
        framed.send(&Message::Heartbeat { worker_id: 3 }).unwrap();
    });
    assert_eq!(server.recv().unwrap(), Message::Heartbeat { worker_id: 3 });
    assert_eq!(server.skipped_unknown(), 1);
    t.join().unwrap();
}

/// A newer peer may even open with unknown frames *before* the version
/// handshake; the handshake must still complete.
#[test]
fn handshake_survives_leading_unknown_frames() {
    let (server_sock, client_sock) = raw_tcp_pair();
    let mut server = FramedStream::new(server_sock);
    let t = std::thread::spawn(move || {
        let mut raw = client_sock;
        write_frame(&mut raw, 2026, &[0xAB; 16]).unwrap();
        write_frame(&mut raw, 2027, &[]).unwrap();
        let mut framed = FramedStream::new(raw);
        framed.handshake().unwrap()
    });
    assert_eq!(server.handshake().unwrap(), PROTOCOL_VERSION);
    assert_eq!(server.skipped_unknown(), 2);
    assert_eq!(t.join().unwrap(), PROTOCOL_VERSION);
}
