/// Privacy-budget accounting across training rounds.
///
/// Each round that releases noised parameters consumes privacy budget; the
/// accountant tracks cumulative loss under two classic rules:
///
/// * **Basic composition** — ε and δ add up linearly over releases.
/// * **Advanced composition** (Dwork–Rothblum–Vadhan) — for `k` releases of
///   an ε-DP mechanism, the total is
///   `ε_total = ε·√(2k·ln(1/δ′)) + k·ε·(e^ε − 1)` at an extra δ′.
///
/// The paper's §V-B.4 experiment runs 100 rounds at ε = 0.5 per release —
/// the accountant makes the *cumulative* cost of that configuration
/// explicit.
///
/// # Example
///
/// ```
/// use comdml_privacy::PrivacyAccountant;
///
/// let mut acc = PrivacyAccountant::new();
/// for _ in 0..100 {
///     acc.record(0.05, 1e-6);
/// }
/// assert_eq!(acc.releases(), 100);
/// assert!((acc.basic_epsilon() - 5.0).abs() < 1e-9);
/// // Small per-release ε: advanced composition is much tighter.
/// assert!(acc.advanced_epsilon(1e-5) < acc.basic_epsilon());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrivacyAccountant {
    epsilon_sum: f64,
    delta_sum: f64,
    max_epsilon: f64,
    releases: usize,
}

impl PrivacyAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (ε, δ)-DP release.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive or `delta` is negative.
    pub fn record(&mut self, epsilon: f64, delta: f64) {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(delta >= 0.0, "delta cannot be negative, got {delta}");
        self.epsilon_sum += epsilon;
        self.delta_sum += delta;
        self.max_epsilon = self.max_epsilon.max(epsilon);
        self.releases += 1;
    }

    /// Number of releases recorded.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Cumulative ε under basic composition.
    pub fn basic_epsilon(&self) -> f64 {
        self.epsilon_sum
    }

    /// Cumulative δ under basic composition.
    pub fn basic_delta(&self) -> f64 {
        self.delta_sum
    }

    /// Cumulative ε under advanced composition at slack `delta_prime`,
    /// using the worst per-release ε (valid upper bound for heterogeneous
    /// releases).
    ///
    /// # Panics
    ///
    /// Panics if `delta_prime` is not in `(0, 1)`.
    pub fn advanced_epsilon(&self, delta_prime: f64) -> f64 {
        assert!(
            delta_prime > 0.0 && delta_prime < 1.0,
            "delta' must be in (0, 1), got {delta_prime}"
        );
        if self.releases == 0 {
            return 0.0;
        }
        let k = self.releases as f64;
        let e = self.max_epsilon;
        e * (2.0 * k * (1.0 / delta_prime).ln()).sqrt() + k * e * (e.exp() - 1.0)
    }

    /// Whether the budget stays within a target (ε, δ) under basic
    /// composition.
    pub fn within(&self, epsilon_budget: f64, delta_budget: f64) -> bool {
        self.basic_epsilon() <= epsilon_budget && self.basic_delta() <= delta_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_composition_adds_linearly() {
        let mut acc = PrivacyAccountant::new();
        acc.record(0.5, 1e-5);
        acc.record(0.3, 1e-5);
        assert!((acc.basic_epsilon() - 0.8).abs() < 1e-12);
        assert!((acc.basic_delta() - 2e-5).abs() < 1e-18);
        assert_eq!(acc.releases(), 2);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_releases() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..1000 {
            acc.record(0.01, 0.0);
        }
        assert!(acc.advanced_epsilon(1e-6) < acc.basic_epsilon());
    }

    #[test]
    fn advanced_is_worse_for_few_large_releases() {
        let mut acc = PrivacyAccountant::new();
        acc.record(2.0, 0.0);
        // One big release: the √-term plus the e^ε term exceeds plain ε.
        assert!(acc.advanced_epsilon(1e-6) > acc.basic_epsilon());
    }

    #[test]
    fn budget_check() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..10 {
            acc.record(0.5, 1e-6);
        }
        assert!(acc.within(5.0, 1e-4));
        assert!(!acc.within(4.9, 1e-4));
    }

    #[test]
    fn empty_accountant_is_free() {
        let acc = PrivacyAccountant::new();
        assert_eq!(acc.basic_epsilon(), 0.0);
        assert_eq!(acc.advanced_epsilon(1e-5), 0.0);
        assert!(acc.within(0.0, 0.0));
    }
}
