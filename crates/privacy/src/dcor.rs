use comdml_tensor::Tensor;

/// Sample distance correlation between two batches of vectors
/// (Székely's dCor, the quantity NoPeek \[43\] minimizes between raw inputs
/// and intermediate activations).
///
/// Both tensors are interpreted as `[batch, features]` (higher-rank tensors
/// are flattened per sample). Returns a value in `[0, 1]`; 0 means
/// statistically unrelated, 1 means one is a deterministic affine-distance
/// function of the other.
///
/// Returns `None` if the batch sizes differ or the batch is smaller than 2.
///
/// # Example
///
/// ```
/// use comdml_privacy::distance_correlation;
/// use comdml_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[4, 1]).unwrap();
/// let dcor_self = distance_correlation(&x, &x).unwrap();
/// assert!(dcor_self > 0.99);
/// ```
pub fn distance_correlation(x: &Tensor, z: &Tensor) -> Option<f64> {
    let n = *x.shape().first()?;
    if n < 2 || z.shape().first() != Some(&n) {
        return None;
    }
    let dx = centered_distance_matrix(x, n);
    let dz = centered_distance_matrix(z, n);
    let mut dcov_xz = 0.0;
    let mut dvar_x = 0.0;
    let mut dvar_z = 0.0;
    for i in 0..n * n {
        dcov_xz += dx[i] * dz[i];
        dvar_x += dx[i] * dx[i];
        dvar_z += dz[i] * dz[i];
    }
    let denom = (dvar_x * dvar_z).sqrt();
    if denom <= 1e-12 {
        return Some(0.0);
    }
    Some((dcov_xz / denom).clamp(0.0, 1.0).sqrt())
}

fn centered_distance_matrix(t: &Tensor, n: usize) -> Vec<f64> {
    let f = t.len() / n;
    let data = t.data();
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &data[i * f..(i + 1) * f];
            let b = &data[j * f..(j + 1) * f];
            let dist =
                a.iter().zip(b.iter()).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt();
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    // Double centering: d_ij - row_mean_i - col_mean_j + grand_mean.
    let row_means: Vec<f64> =
        (0..n).map(|i| d[i * n..(i + 1) * n].iter().sum::<f64>() / n as f64).collect();
    let grand = row_means.iter().sum::<f64>() / n as f64;
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = d[i * n + j] - row_means[i] - row_means[j] + grand;
        }
    }
    d
}

/// The NoPeek composite objective (\[43\]): `task_loss + α · dCor(x, z)`.
///
/// The paper integrates this with α = 0.5 and reports 81.7% accuracy on
/// CIFAR-10 (§V-B.4). In our real-training experiments the dCor term is
/// evaluated per batch and reported alongside the task loss; minimizing it
/// end-to-end would need higher-order gradients, so (as in common NoPeek
/// implementations) it acts through activation regularization strength
/// reported to the caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoPeekLoss {
    /// Weight of the distance-correlation penalty.
    pub alpha: f64,
}

impl NoPeekLoss {
    /// Creates the loss with penalty weight `alpha` (0.5 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha cannot be negative, got {alpha}");
        Self { alpha }
    }

    /// Combines a task loss with the leakage penalty for a batch.
    ///
    /// Returns `None` if the distance correlation is undefined for the
    /// inputs (mismatched or tiny batches).
    pub fn combine(&self, task_loss: f64, x: &Tensor, z: &Tensor) -> Option<f64> {
        Some(task_loss + self.alpha * distance_correlation(x, z)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_batches_have_dcor_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[16, 8], 1.0, &mut rng);
        let d = distance_correlation(&x, &x).unwrap();
        assert!(d > 0.999, "dCor(x, x) = {d}");
    }

    #[test]
    fn independent_batches_have_lower_dcor_than_dependent() {
        // The naive sample estimator is biased upward at finite n, so test
        // the *ordering* rather than an absolute threshold.
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[64, 8], 1.0, &mut rng);
        let z_indep = Tensor::randn(&[64, 8], 1.0, &mut rng);
        let d_indep = distance_correlation(&x, &z_indep).unwrap();
        let d_dep = distance_correlation(&x, &x.scale(2.0)).unwrap();
        assert!(d_indep < 0.7, "independent dCor = {d_indep}");
        assert!(d_dep > d_indep + 0.25, "dep {d_dep} vs indep {d_indep}");
    }

    #[test]
    fn linear_transform_keeps_high_dcor() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[32, 4], 1.0, &mut rng);
        let z = x.scale(3.0);
        let d = distance_correlation(&x, &z).unwrap();
        assert!(d > 0.99, "scaled dCor = {d}");
    }

    #[test]
    fn noise_reduces_dcor() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[48, 6], 1.0, &mut rng);
        let clean = distance_correlation(&x, &x).unwrap();
        let noisy_z = x.add(&Tensor::randn(&[48, 6], 3.0, &mut rng)).unwrap();
        let noisy = distance_correlation(&x, &noisy_z).unwrap();
        assert!(noisy < clean, "noise should hide information: {noisy} vs {clean}");
    }

    #[test]
    fn mismatched_batches_rejected() {
        let x = Tensor::zeros(&[4, 2]);
        let z = Tensor::zeros(&[5, 2]);
        assert!(distance_correlation(&x, &z).is_none());
        assert!(distance_correlation(&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[1, 2])).is_none());
    }

    #[test]
    fn constant_batch_has_zero_dcor() {
        let x = Tensor::ones(&[8, 3]);
        let mut rng = StdRng::seed_from_u64(5);
        let z = Tensor::randn(&[8, 3], 1.0, &mut rng);
        assert_eq!(distance_correlation(&x, &z).unwrap(), 0.0);
    }

    #[test]
    fn nopeek_combines_losses() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[16, 4], 1.0, &mut rng);
        let loss = NoPeekLoss::new(0.5).combine(1.0, &x, &x).unwrap();
        assert!(loss > 1.49 && loss <= 1.5 + 1e-9);
    }
}
