//! Privacy-protection toolkit (§IV-C and §V-B.4).
//!
//! ComDML exchanges intermediate activations between paired agents and model
//! parameters during aggregation. The paper evaluates three pluggable
//! defences, all reproduced here:
//!
//! * [`LaplaceMechanism`] / [`GaussianMechanism`] — differential privacy on
//!   model parameters (the paper reports 77.6% accuracy with Laplace noise,
//!   ε = 0.5, δ = 1e−5).
//! * [`PatchShuffler`] — shuffling spatial patches of the input image before
//!   it enters the network (\[42\]; 83.2% reported).
//! * [`distance_correlation`] and [`NoPeekLoss`] — minimizing the distance
//!   correlation between raw inputs and intermediate representations
//!   (\[43\] NoPeek; 81.7% at α = 0.5).
//!
//! # Example
//!
//! ```
//! use comdml_privacy::LaplaceMechanism;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mech = LaplaceMechanism::new(0.5, 1.0);
//! let mut params = vec![1.0f32; 100];
//! mech.privatize(&mut params, &mut rng);
//! assert!(params.iter().any(|&v| v != 1.0));
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod accountant;
mod dcor;
mod dp;
mod patch;

pub use accountant::PrivacyAccountant;
pub use dcor::{distance_correlation, NoPeekLoss};
pub use dp::{GaussianMechanism, LaplaceMechanism};
pub use patch::PatchShuffler;
