use rand::Rng;
use rand_distr::{Distribution, Normal};

/// The Laplace mechanism: adds `Lap(0, sensitivity/ε)` noise to each value
/// — ε-differential privacy for the released parameters (\[39\]; the paper's
/// §V-B.4 uses ε = 0.5).
///
/// # Example
///
/// ```
/// use comdml_privacy::LaplaceMechanism;
///
/// let mech = LaplaceMechanism::new(0.5, 1.0);
/// assert!((mech.scale() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` or `sensitivity` is not positive.
    pub fn new(epsilon: f64, sensitivity: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
        Self { epsilon, sensitivity }
    }

    /// The privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Laplace scale `b = sensitivity / ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Adds independent Laplace noise to every value in place.
    pub fn privatize<R: Rng>(&self, values: &mut [f32], rng: &mut R) {
        let b = self.scale();
        for v in values.iter_mut() {
            // Inverse-CDF sampling: u ~ U(-1/2, 1/2),
            // x = -b * sign(u) * ln(1 - 2|u|).
            let u: f64 = rng.gen::<f64>() - 0.5;
            let noise = -b * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln();
            *v += noise as f32;
        }
    }
}

/// The Gaussian mechanism: `N(0, σ²)` noise with
/// `σ = sensitivity·√(2·ln(1.25/δ))/ε` — (ε, δ)-differential privacy \[39\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMechanism {
    epsilon: f64,
    delta: f64,
    sensitivity: f64,
}

impl GaussianMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon`, `delta` or `sensitivity` is not in its valid
    /// range (`ε > 0`, `0 < δ < 1`, `sensitivity > 0`).
    pub fn new(epsilon: f64, delta: f64, sensitivity: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta must be in (0, 1), got {delta}");
        assert!(sensitivity > 0.0, "sensitivity must be positive, got {sensitivity}");
        Self { epsilon, delta, sensitivity }
    }

    /// The noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sensitivity * (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }

    /// Adds independent Gaussian noise to every value in place.
    pub fn privatize<R: Rng>(&self, values: &mut [f32], rng: &mut R) {
        let normal = Normal::new(0.0, self.sigma()).expect("sigma is finite and positive");
        for v in values.iter_mut() {
            *v += normal.sample(rng) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_noise_has_expected_scale() {
        let mech = LaplaceMechanism::new(0.5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut values = vec![0.0f32; 50_000];
        mech.privatize(&mut values, &mut rng);
        // Laplace(b): E|X| = b = 2.0 here.
        let mean_abs: f64 =
            values.iter().map(|v| v.abs() as f64).sum::<f64>() / values.len() as f64;
        assert!((mean_abs - 2.0).abs() < 0.1, "mean |noise| {mean_abs}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let strict = LaplaceMechanism::new(0.1, 1.0);
        let loose = LaplaceMechanism::new(10.0, 1.0);
        assert!(strict.scale() > loose.scale());
    }

    #[test]
    fn gaussian_sigma_matches_formula() {
        let mech = GaussianMechanism::new(0.5, 1e-5, 1.0);
        let expect = (2.0 * (1.25f64 / 1e-5).ln()).sqrt() / 0.5;
        assert!((mech.sigma() - expect).abs() < 1e-9);
    }

    #[test]
    fn gaussian_noise_is_centered() {
        let mech = GaussianMechanism::new(1.0, 1e-5, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut values = vec![5.0f32; 50_000];
        mech.privatize(&mut values, &mut rng);
        let mean: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        let _ = LaplaceMechanism::new(0.0, 1.0);
    }
}
