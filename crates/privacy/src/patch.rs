use comdml_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Patch shuffling (\[42\]): permutes square spatial patches of each image so
/// the intermediate representation no longer preserves global structure,
/// while local statistics (what early conv layers consume) survive.
///
/// # Example
///
/// ```
/// use comdml_privacy::PatchShuffler;
/// use comdml_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let shuffler = PatchShuffler::new(4);
/// let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
/// let shuffled = shuffler.shuffle(&x, &mut rng).unwrap();
/// assert_eq!(shuffled.shape(), x.shape());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchShuffler {
    patch: usize,
}

impl PatchShuffler {
    /// Creates a shuffler with `patch × patch` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `patch` is zero.
    pub fn new(patch: usize) -> Self {
        assert!(patch > 0, "patch size must be positive");
        Self { patch }
    }

    /// The patch edge length.
    pub fn patch_size(&self) -> usize {
        self.patch
    }

    /// Returns a copy of `[batch, c, h, w]` images with patches permuted
    /// independently per image (all channels move together, preserving
    /// pixel alignment across channels).
    ///
    /// Returns `None` if the input is not rank 4 or `h`/`w` are not
    /// divisible by the patch size.
    pub fn shuffle<R: Rng>(&self, images: &Tensor, rng: &mut R) -> Option<Tensor> {
        if images.rank() != 4 {
            return None;
        }
        let (b, c, h, w) =
            (images.shape()[0], images.shape()[1], images.shape()[2], images.shape()[3]);
        let p = self.patch;
        if h % p != 0 || w % p != 0 {
            return None;
        }
        let (gh, gw) = (h / p, w / p);
        let n_patches = gh * gw;
        let src = images.data();
        let mut out = vec![0.0f32; src.len()];
        for bi in 0..b {
            let mut perm: Vec<usize> = (0..n_patches).collect();
            perm.shuffle(rng);
            for (dst_patch, &src_patch) in perm.iter().enumerate() {
                let (dy, dx) = (dst_patch / gw, dst_patch % gw);
                let (sy, sx) = (src_patch / gw, src_patch % gw);
                for ci in 0..c {
                    for py in 0..p {
                        for px in 0..p {
                            let si = ((bi * c + ci) * h + sy * p + py) * w + sx * p + px;
                            let di = ((bi * c + ci) * h + dy * p + py) * w + dx * p + px;
                            out[di] = src[si];
                        }
                    }
                }
            }
        }
        Some(Tensor::from_vec(out, images.shape()).expect("same shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_of_pixels() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[1, 1, 8, 8], 1.0, &mut rng);
        let s = PatchShuffler::new(2).shuffle(&x, &mut rng).unwrap();
        let mut a: Vec<f32> = x.data().to_vec();
        let mut b: Vec<f32> = s.data().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b, "pixel multiset must be preserved");
    }

    #[test]
    fn channels_move_together() {
        let mut rng = StdRng::seed_from_u64(4);
        // Channel 1 = channel 0 + 100: the offset must survive shuffling.
        let base = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let mut data = base.data().to_vec();
        data.extend(base.data().iter().map(|v| v + 100.0));
        let x = Tensor::from_vec(data, &[1, 2, 4, 4]).unwrap();
        let s = PatchShuffler::new(2).shuffle(&x, &mut rng).unwrap();
        for i in 0..16 {
            assert!((s.data()[i] + 100.0 - s.data()[16 + i]).abs() < 1e-6);
        }
    }

    #[test]
    fn indivisible_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::zeros(&[1, 1, 6, 6]);
        assert!(PatchShuffler::new(4).shuffle(&x, &mut rng).is_none());
        let v = Tensor::zeros(&[4]);
        assert!(PatchShuffler::new(2).shuffle(&v, &mut rng).is_none());
    }

    #[test]
    fn whole_image_patch_is_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let s = PatchShuffler::new(8).shuffle(&x, &mut rng).unwrap();
        assert_eq!(s, x);
    }
}
