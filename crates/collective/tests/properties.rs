//! Property tests: every AllReduce implementation equals the arithmetic mean.

use comdml_collective::{
    gossip_round, halving_doubling_allreduce, naive_allreduce, ring_allreduce, Int8Quantizer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bufs_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..12, 1usize..40).prop_flat_map(|(k, n)| {
        prop::collection::vec(prop::collection::vec(-100.0f32..100.0, n), k)
    })
}

fn mean_of(bufs: &[Vec<f32>]) -> Vec<f32> {
    let n = bufs[0].len();
    let mut m = vec![0.0f64; n];
    for b in bufs {
        for (acc, &v) in m.iter_mut().zip(b.iter()) {
            *acc += v as f64;
        }
    }
    m.into_iter().map(|v| (v / bufs.len() as f64) as f32).collect()
}

proptest! {
    #[test]
    fn ring_equals_mean(mut bufs in bufs_strategy()) {
        let expect = mean_of(&bufs);
        ring_allreduce(&mut bufs).unwrap();
        for b in &bufs {
            for (x, y) in b.iter().zip(expect.iter()) {
                prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn halving_doubling_equals_mean(mut bufs in bufs_strategy()) {
        let expect = mean_of(&bufs);
        halving_doubling_allreduce(&mut bufs).unwrap();
        for b in &bufs {
            for (x, y) in b.iter().zip(expect.iter()) {
                prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn all_algorithms_agree(mut a in bufs_strategy()) {
        let mut b = a.clone();
        let mut c = a.clone();
        naive_allreduce(&mut a).unwrap();
        ring_allreduce(&mut b).unwrap();
        halving_doubling_allreduce(&mut c).unwrap();
        for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
            for ((xv, yv), zv) in x.iter().zip(y.iter()).zip(z.iter()) {
                prop_assert!((xv - yv).abs() < 1e-2);
                prop_assert!((xv - zv).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn gossip_preserves_global_sum(mut bufs in bufs_strategy(), seed in 0u64..u64::MAX) {
        let k = bufs.len();
        let sum_before: f64 = bufs.iter().flat_map(|b| b.iter()).map(|&v| v as f64).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let all = move |r: usize| (0..k).filter(|&j| j != r).collect::<Vec<_>>();
        gossip_round(&mut bufs, all, &mut rng).unwrap();
        let sum_after: f64 = bufs.iter().flat_map(|b| b.iter()).map(|&v| v as f64).sum();
        prop_assert!((sum_before - sum_after).abs() < 1e-1 * (1.0 + sum_before.abs()));
    }

    #[test]
    fn quantizer_error_within_bound(values in prop::collection::vec(-50.0f32..50.0, 1..128)) {
        let q = Int8Quantizer::fit(&values);
        let restored = q.dequantize(&q.quantize(&values));
        for (a, b) in values.iter().zip(restored.iter()) {
            prop_assert!((a - b).abs() <= q.max_error() + 1e-5);
        }
    }
}
