/// Symmetric int8 quantizer for model payloads.
///
/// §IV-B notes that "other existing aggregation techniques (e.g., quantized
/// gradients) can also be integrated into the proposed training process to
/// further reduce communication overhead"; this is that hook. Values are
/// mapped to `i8` with a single per-tensor scale, shrinking AllReduce
/// payloads 4×.
///
/// # Example
///
/// ```
/// use comdml_collective::Int8Quantizer;
///
/// let q = Int8Quantizer::fit(&[0.5, -1.0, 0.25]);
/// let packed = q.quantize(&[0.5, -1.0, 0.25]);
/// let restored = q.dequantize(&packed);
/// assert!((restored[1] - (-1.0)).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Quantizer {
    scale: f32,
}

impl Int8Quantizer {
    /// Fits the scale to the maximum magnitude of `values` (scale 1 for an
    /// all-zero or empty input so dequantization stays well-defined).
    pub fn fit(values: &[f32]) -> Self {
        let max = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self { scale: if max > 0.0 { max / 127.0 } else { 1.0 } }
    }

    /// The quantization scale (value per quantization step).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes values to int8 with round-to-nearest.
    pub fn quantize(&self, values: &[f32]) -> Vec<i8> {
        values.iter().map(|&v| (v / self.scale).round().clamp(-127.0, 127.0) as i8).collect()
    }

    /// Restores approximate floats.
    pub fn dequantize(&self, packed: &[i8]) -> Vec<f32> {
        packed.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Worst-case absolute reconstruction error for values inside the fitted
    /// range: half a quantization step.
    pub fn max_error(&self) -> f32 {
        self.scale * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 13.0).collect();
        let q = Int8Quantizer::fit(&values);
        let restored = q.dequantize(&q.quantize(&values));
        for (a, b) in values.iter().zip(restored.iter()) {
            assert!((a - b).abs() <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn all_zero_input_is_stable() {
        let values = vec![0.0f32; 5];
        let q = Int8Quantizer::fit(&values);
        assert_eq!(q.dequantize(&q.quantize(&values)), values);
    }

    #[test]
    fn extremes_map_to_plus_minus_127() {
        let values = vec![-2.0f32, 2.0];
        let q = Int8Quantizer::fit(&values);
        let packed = q.quantize(&values);
        assert_eq!(packed, vec![-127, 127]);
    }

    #[test]
    fn payload_shrinks_4x() {
        let values = vec![1.0f32; 64];
        let q = Int8Quantizer::fit(&values);
        let packed = q.quantize(&values);
        assert_eq!(packed.len() * std::mem::size_of::<i8>() * 4, values.len() * 4);
    }
}
