use rand::Rng;

use crate::CollectiveError;

/// Averages the buffers of one pair of ranks in place — the primitive step
/// of gossip learning (\[11\] Hegedűs et al.): both partners end up with the
/// element-wise mean of their two models.
///
/// # Errors
///
/// Returns [`CollectiveError::InvalidPair`] if `a == b` or either index is
/// out of range, and [`CollectiveError::LengthMismatch`] if the two buffers
/// disagree in length.
pub fn gossip_pair_average(
    bufs: &mut [Vec<f32>],
    a: usize,
    b: usize,
) -> Result<(), CollectiveError> {
    let len = bufs.len();
    if a == b || a >= len || b >= len {
        return Err(CollectiveError::InvalidPair { a, b, len });
    }
    if bufs[a].len() != bufs[b].len() {
        return Err(CollectiveError::LengthMismatch {
            expected: bufs[a].len(),
            rank: b,
            actual: bufs[b].len(),
        });
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (left, right) = bufs.split_at_mut(hi);
    let x = &mut left[lo];
    let y = &mut right[0];
    for (xv, yv) in x.iter_mut().zip(y.iter_mut()) {
        let m = 0.5 * (*xv + *yv);
        *xv = m;
        *yv = m;
    }
    Ok(())
}

/// One gossip round: every rank picks a random neighbour (per the adjacency
/// closure) and the pair averages. Ranks without neighbours keep their model
/// — gossip degrades gracefully on sparse topologies.
///
/// `neighbors(r)` must return the ranks `r` may talk to. Each rank initiates
/// at most one exchange per round, mirroring GossipFL-style protocols that
/// "reduce agent communication to a single peer".
///
/// # Errors
///
/// Propagates [`CollectiveError::LengthMismatch`] from the pair averaging.
pub fn gossip_round<R, F>(
    bufs: &mut [Vec<f32>],
    neighbors: F,
    rng: &mut R,
) -> Result<usize, CollectiveError>
where
    R: Rng,
    F: Fn(usize) -> Vec<usize>,
{
    let k = bufs.len();
    let mut exchanges = 0;
    for r in 0..k {
        let nbrs = neighbors(r);
        if nbrs.is_empty() {
            continue;
        }
        let partner = nbrs[rng.gen_range(0..nbrs.len())];
        if partner == r || partner >= k {
            continue;
        }
        gossip_pair_average(bufs, r, partner)?;
        exchanges += 1;
    }
    Ok(exchanges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_average_is_midpoint() {
        let mut bufs = vec![vec![0.0, 4.0], vec![2.0, 0.0], vec![9.0, 9.0]];
        gossip_pair_average(&mut bufs, 0, 1).unwrap();
        assert_eq!(bufs[0], vec![1.0, 2.0]);
        assert_eq!(bufs[1], vec![1.0, 2.0]);
        assert_eq!(bufs[2], vec![9.0, 9.0], "third rank untouched");
    }

    #[test]
    fn pair_average_validates_indices() {
        let mut bufs = vec![vec![0.0], vec![1.0]];
        assert!(gossip_pair_average(&mut bufs, 0, 0).is_err());
        assert!(gossip_pair_average(&mut bufs, 0, 5).is_err());
    }

    #[test]
    fn gossip_preserves_global_mean() {
        let mut bufs: Vec<Vec<f32>> = (0..6).map(|r| vec![r as f32, 10.0 - r as f32]).collect();
        let mean_before: f32 = bufs.iter().map(|b| b[0]).sum::<f32>() / 6.0;
        let mut rng = StdRng::seed_from_u64(3);
        let all = |r: usize| (0..6).filter(|&j| j != r).collect::<Vec<_>>();
        for _ in 0..10 {
            gossip_round(&mut bufs, all, &mut rng).unwrap();
        }
        let mean_after: f32 = bufs.iter().map(|b| b[0]).sum::<f32>() / 6.0;
        assert!((mean_before - mean_after).abs() < 1e-4);
    }

    #[test]
    fn gossip_converges_toward_consensus() {
        let mut bufs: Vec<Vec<f32>> = (0..8).map(|r| vec![r as f32 * 8.0]).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let all = |r: usize| (0..8).filter(|&j| j != r).collect::<Vec<_>>();
        let spread = |bufs: &[Vec<f32>]| {
            let vals: Vec<f32> = bufs.iter().map(|b| b[0]).collect();
            let max = vals.iter().cloned().fold(f32::MIN, f32::max);
            let min = vals.iter().cloned().fold(f32::MAX, f32::min);
            max - min
        };
        let before = spread(&bufs);
        for _ in 0..30 {
            gossip_round(&mut bufs, all, &mut rng).unwrap();
        }
        assert!(spread(&bufs) < 0.2 * before, "gossip should shrink disagreement");
    }

    #[test]
    fn isolated_ranks_are_skipped() {
        let mut bufs = vec![vec![1.0], vec![5.0]];
        let mut rng = StdRng::seed_from_u64(0);
        let none = |_: usize| Vec::new();
        let n = gossip_round(&mut bufs, none, &mut rng).unwrap();
        assert_eq!(n, 0);
        assert_eq!(bufs[0], vec![1.0]);
    }
}
