use std::error::Error;
use std::fmt;

/// Errors produced by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// No participants were supplied.
    Empty,
    /// Participants disagree on buffer length.
    LengthMismatch {
        /// Length of the first buffer.
        expected: usize,
        /// Index of the offending participant.
        rank: usize,
        /// Its buffer length.
        actual: usize,
    },
    /// A pair index was out of range or degenerate.
    InvalidPair {
        /// First rank.
        a: usize,
        /// Second rank.
        b: usize,
        /// Number of participants.
        len: usize,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::Empty => write!(f, "collective requires at least one participant"),
            CollectiveError::LengthMismatch { expected, rank, actual } => {
                write!(f, "rank {rank} has buffer length {actual} but rank 0 has {expected}")
            }
            CollectiveError::InvalidPair { a, b, len } => {
                write!(f, "invalid gossip pair ({a}, {b}) among {len} participants")
            }
        }
    }
}

impl Error for CollectiveError {}
