/// Which AllReduce schedule to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllReduceAlgorithm {
    /// Ring: `2(K−1)` steps.
    Ring,
    /// Recursive halving/doubling: `2⌈log2 K⌉` steps (the paper's choice for
    /// large `K`).
    HalvingDoubling,
}

/// Communication cost of one AllReduce over `K` agents and a `b`-byte model.
///
/// Both algorithms move `2·(K−1)/K·b` bytes per agent (§IV-B); they differ
/// in the number of latency-bound steps. [`CollectiveCost::time_s`] converts
/// the cost into seconds given effective bandwidth and per-step latency.
///
/// # Example
///
/// ```
/// use comdml_collective::{AllReduceAlgorithm, CollectiveCost};
///
/// let ring = CollectiveCost::new(AllReduceAlgorithm::Ring, 100, 3_400_000);
/// let hd = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 100, 3_400_000);
/// assert!(hd.steps < ring.steps);
/// assert!((hd.bytes_per_agent - ring.bytes_per_agent).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveCost {
    /// Number of sequential communication steps.
    pub steps: usize,
    /// Bytes sent (and received) by each agent.
    pub bytes_per_agent: f64,
}

impl CollectiveCost {
    /// Computes the cost for `k` agents exchanging a `model_bytes` model.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(algorithm: AllReduceAlgorithm, k: usize, model_bytes: u64) -> Self {
        assert!(k > 0, "allreduce needs at least one agent");
        let bytes_per_agent = 2.0 * (k as f64 - 1.0) / k as f64 * model_bytes as f64;
        let steps = match algorithm {
            AllReduceAlgorithm::Ring => 2 * (k - 1),
            AllReduceAlgorithm::HalvingDoubling => {
                if k == 1 {
                    0
                } else {
                    2 * (k as f64).log2().ceil() as usize
                }
            }
        };
        Self { steps, bytes_per_agent }
    }

    /// Wall-clock seconds given the slowest participant's effective
    /// bandwidth (bytes/s) and the per-step latency (seconds).
    ///
    /// Returns infinity if any participant is disconnected
    /// (`bytes_per_s <= 0`), matching the semantics of a 0 Mbps link.
    pub fn time_s(&self, bytes_per_s: f64, step_latency_s: f64) -> f64 {
        if self.bytes_per_agent == 0.0 {
            return 0.0;
        }
        if bytes_per_s <= 0.0 {
            return f64::INFINITY;
        }
        self.steps as f64 * step_latency_s + self.bytes_per_agent / bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_match_paper() {
        // "The halving/doubling algorithm consists of 2 log2(K) communication
        // steps, while the ring algorithm involves 2(K − 1) steps."
        let ring = CollectiveCost::new(AllReduceAlgorithm::Ring, 8, 1000);
        assert_eq!(ring.steps, 14);
        let hd = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 8, 1000);
        assert_eq!(hd.steps, 6);
    }

    #[test]
    fn bytes_match_paper_formula() {
        // "each agent sends and receives 2 (K−1)/K b bytes of data".
        let c = CollectiveCost::new(AllReduceAlgorithm::Ring, 10, 1_000_000);
        assert!((c.bytes_per_agent - 1.8e6).abs() < 1.0);
    }

    #[test]
    fn single_agent_costs_nothing() {
        let c = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 1, 1_000_000);
        assert_eq!(c.bytes_per_agent, 0.0);
        assert_eq!(c.time_s(1e6, 0.01), 0.0);
    }

    #[test]
    fn disconnected_time_is_infinite() {
        let c = CollectiveCost::new(AllReduceAlgorithm::Ring, 4, 1000);
        assert!(c.time_s(0.0, 0.01).is_infinite());
    }

    #[test]
    fn hd_beats_ring_on_latency_dominated_links() {
        let k = 64;
        let ring = CollectiveCost::new(AllReduceAlgorithm::Ring, k, 1000);
        let hd = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, k, 1000);
        // High latency, tiny payload: step count dominates.
        assert!(hd.time_s(1e9, 0.05) < ring.time_s(1e9, 0.05));
    }

    #[test]
    fn non_power_of_two_rounds_steps_up() {
        let hd = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 10, 1000);
        assert_eq!(hd.steps, 8); // 2 * ceil(log2 10) = 2 * 4
    }
}
