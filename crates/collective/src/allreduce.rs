use crate::CollectiveError;

fn validate(bufs: &[Vec<f32>]) -> Result<usize, CollectiveError> {
    let Some(first) = bufs.first() else {
        return Err(CollectiveError::Empty);
    };
    let n = first.len();
    for (rank, b) in bufs.iter().enumerate() {
        if b.len() != n {
            return Err(CollectiveError::LengthMismatch { expected: n, rank, actual: b.len() });
        }
    }
    Ok(n)
}

fn divide_all(bufs: &mut [Vec<f32>]) {
    let inv = 1.0 / bufs.len() as f32;
    for b in bufs.iter_mut() {
        for v in b.iter_mut() {
            *v *= inv;
        }
    }
}

/// Reference AllReduce: computes the element-wise mean directly and writes it
/// to every participant. Used as the ground truth in tests and by simulations
/// that only need the result, not the communication schedule.
///
/// # Errors
///
/// Returns [`CollectiveError::Empty`] with no participants, or
/// [`CollectiveError::LengthMismatch`] if buffers disagree in length.
pub fn naive_allreduce(bufs: &mut [Vec<f32>]) -> Result<(), CollectiveError> {
    let n = validate(bufs)?;
    let mut sum = vec![0.0f32; n];
    for b in bufs.iter() {
        for (s, &v) in sum.iter_mut().zip(b.iter()) {
            *s += v;
        }
    }
    let inv = 1.0 / bufs.len() as f32;
    for b in bufs.iter_mut() {
        for (dst, &s) in b.iter_mut().zip(sum.iter()) {
            *dst = s * inv;
        }
    }
    Ok(())
}

/// The ring AllReduce (Goyal et al. \[34\]): a reduce-scatter over `K−1` steps
/// followed by an all-gather over `K−1` steps, each agent exchanging
/// `2·(K−1)/K·b` bytes in total. Buffers end up holding the element-wise
/// *mean* of the inputs.
///
/// The buffer is partitioned into `K` chunks; in reduce-scatter step `s`,
/// rank `r` sends chunk `(r − s) mod K` to rank `r + 1` and accumulates the
/// chunk arriving from `r − 1`.
///
/// # Errors
///
/// Returns [`CollectiveError::Empty`] with no participants, or
/// [`CollectiveError::LengthMismatch`] if buffers disagree in length.
pub fn ring_allreduce(bufs: &mut [Vec<f32>]) -> Result<(), CollectiveError> {
    let n = validate(bufs)?;
    let k = bufs.len();
    if k == 1 {
        return Ok(());
    }
    // Chunk c covers [bounds[c], bounds[c+1]).
    let bounds: Vec<usize> = (0..=k).map(|c| c * n / k).collect();
    let chunk = |c: usize| bounds[c % k]..bounds[c % k + 1];

    // Reduce-scatter: after K-1 steps, rank r holds the full sum of chunk
    // (r + 1) mod K.
    for s in 0..k - 1 {
        // Compute all sends of this step before applying them: real ranks
        // exchange simultaneously.
        let sends: Vec<(usize, usize, Vec<f32>)> = (0..k)
            .map(|r| {
                let c = (r + k - s) % k;
                (r, c, bufs[r][chunk(c)].to_vec())
            })
            .collect();
        for (r, c, data) in sends {
            let dst = (r + 1) % k;
            let range = chunk(c);
            for (acc, v) in bufs[dst][range].iter_mut().zip(data) {
                *acc += v;
            }
        }
    }

    // All-gather: rank r broadcasts its fully reduced chunk (r + 1) mod K
    // around the ring over K-1 steps.
    for s in 0..k - 1 {
        let sends: Vec<(usize, usize, Vec<f32>)> = (0..k)
            .map(|r| {
                let c = (r + 1 + k - s) % k;
                (r, c, bufs[r][chunk(c)].to_vec())
            })
            .collect();
        for (r, c, data) in sends {
            let dst = (r + 1) % k;
            let range = chunk(c);
            bufs[dst][range].copy_from_slice(&data);
        }
    }

    divide_all(bufs);
    Ok(())
}

/// The recursive halving/doubling AllReduce (Thakur et al. \[35\]): a
/// recursive-halving reduce-scatter followed by a recursive-doubling
/// all-gather, `2·⌈log2 K⌉` communication steps in total. This is the
/// algorithm ComDML selects for large `K` (§IV-B). Buffers end up holding
/// the element-wise *mean*.
///
/// Non-power-of-two participant counts use the standard fold: the first
/// `K − 2^⌊log2 K⌋` "extra" ranks donate their vectors to a partner before
/// the exchange and receive the final result afterwards.
///
/// # Errors
///
/// Returns [`CollectiveError::Empty`] with no participants, or
/// [`CollectiveError::LengthMismatch`] if buffers disagree in length.
pub fn halving_doubling_allreduce(bufs: &mut [Vec<f32>]) -> Result<(), CollectiveError> {
    validate(bufs)?;
    let k = bufs.len();
    if k == 1 {
        return Ok(());
    }
    let p2 = 1usize << (usize::BITS - 1 - k.leading_zeros()); // largest power of two <= k
    let extra = k - p2;

    // Fold: extra rank e (0..extra) sends its buffer to rank extra + e.
    for e in 0..extra {
        let (left, right) = bufs.split_at_mut(extra);
        for (acc, &v) in right[e].iter_mut().zip(left[e].iter()) {
            *acc += v;
        }
    }

    // Active ranks are extra..k, re-indexed 0..p2.
    let base = extra;
    let mut dist = 1;
    while dist < p2 {
        // Pairwise exchange at distance `dist`: both partners end with the sum.
        let snapshot: Vec<Vec<f32>> = bufs[base..].to_vec();
        for r in 0..p2 {
            let partner = r ^ dist;
            for (acc, &v) in bufs[base + r].iter_mut().zip(snapshot[partner].iter()) {
                *acc += v;
            }
        }
        dist <<= 1;
    }
    // (The halving/doubling data-volume optimization exchanges half-vectors;
    // functionally the recursive-doubling sum above yields the same result,
    // and the byte/step accounting lives in `CollectiveCost`.)

    // Unfold: partners return the final sum to the extra ranks.
    for e in 0..extra {
        let src = bufs[base + e].clone();
        bufs[e].copy_from_slice(&src);
    }

    divide_all(bufs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(bufs: &[Vec<f32>]) -> Vec<f32> {
        let n = bufs[0].len();
        let mut m = vec![0.0f32; n];
        for b in bufs {
            for (acc, &v) in m.iter_mut().zip(b.iter()) {
                *acc += v;
            }
        }
        for v in &mut m {
            *v /= bufs.len() as f32;
        }
        m
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    fn sample_bufs(k: usize, n: usize) -> Vec<Vec<f32>> {
        (0..k).map(|r| (0..n).map(|i| ((r * 31 + i * 7) % 17) as f32 - 8.0).collect()).collect()
    }

    #[test]
    fn naive_matches_mean() {
        let mut bufs = sample_bufs(5, 13);
        let expect = mean_of(&bufs);
        naive_allreduce(&mut bufs).unwrap();
        for b in &bufs {
            assert_close(b, &expect);
        }
    }

    #[test]
    fn ring_matches_mean_for_many_sizes() {
        for k in 1..=9 {
            for n in [1usize, 2, 7, 16, 33] {
                let mut bufs = sample_bufs(k, n);
                let expect = mean_of(&bufs);
                ring_allreduce(&mut bufs).unwrap();
                for (r, b) in bufs.iter().enumerate() {
                    assert_close(b, &expect);
                    let _ = r;
                }
            }
        }
    }

    #[test]
    fn halving_doubling_matches_mean_for_many_counts() {
        for k in 1..=17 {
            let mut bufs = sample_bufs(k, 24);
            let expect = mean_of(&bufs);
            halving_doubling_allreduce(&mut bufs).unwrap();
            for b in &bufs {
                assert_close(b, &expect);
            }
        }
    }

    #[test]
    fn single_agent_is_identity() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0]];
        ring_allreduce(&mut bufs).unwrap();
        assert_eq!(bufs[0], vec![1.0, 2.0, 3.0]);
        halving_doubling_allreduce(&mut bufs).unwrap();
        assert_eq!(bufs[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn chunk_count_smaller_than_buffer_is_fine() {
        // n < k exercises empty chunks in the ring partition.
        let mut bufs = sample_bufs(8, 3);
        let expect = mean_of(&bufs);
        ring_allreduce(&mut bufs).unwrap();
        for b in &bufs {
            assert_close(b, &expect);
        }
    }

    #[test]
    fn errors_on_empty_and_mismatch() {
        let mut empty: Vec<Vec<f32>> = vec![];
        assert_eq!(ring_allreduce(&mut empty), Err(CollectiveError::Empty));
        let mut bad = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            halving_doubling_allreduce(&mut bad),
            Err(CollectiveError::LengthMismatch { rank: 1, .. })
        ));
    }
}
