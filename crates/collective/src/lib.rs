//! Collective communication for decentralized model aggregation.
//!
//! At the end of every ComDML round all agents synchronize their models with
//! an AllReduce (§IV-B "Model aggregation"). The paper considers the two
//! classic bandwidth-efficient algorithms — the ring algorithm and recursive
//! halving/doubling — and picks halving/doubling because it needs only
//! `2·log2(K)` communication steps versus the ring's `2(K−1)`; both move
//! `2·(K−1)/K · b` bytes per agent.
//!
//! This crate implements both algorithms *for real* over in-memory buffers
//! (they are also reused by the tokio transport in `comdml-net`), plus the
//! gossip-averaging primitive used by the Gossip Learning baseline and an
//! int8 quantizer hook (§IV-B notes quantized gradients can be integrated).
//!
//! # Example
//!
//! ```
//! use comdml_collective::{halving_doubling_allreduce, ring_allreduce};
//!
//! let mut bufs = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 4.0]];
//! ring_allreduce(&mut bufs).unwrap();
//! assert_eq!(bufs[0], vec![3.0, 4.0]); // element-wise mean
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod allreduce;
mod cost;
mod error;
mod gossip;
mod quantize;
mod sparsify;

pub use allreduce::{halving_doubling_allreduce, naive_allreduce, ring_allreduce};
pub use cost::{AllReduceAlgorithm, CollectiveCost};
pub use error::CollectiveError;
pub use gossip::{gossip_pair_average, gossip_round};
pub use quantize::Int8Quantizer;
pub use sparsify::{SparseVector, TopKSparsifier};
