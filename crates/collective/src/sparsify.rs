/// Top-k gradient sparsification — the mechanism GossipFL (\[12\], §II-B)
/// uses to "reduce agent communication to a single peer with a compressed
/// model".
///
/// Keeps the `k` largest-magnitude entries of a dense vector as
/// (index, value) pairs; everything else is treated as zero by the
/// receiver. [`SparseVector::densify`] restores a dense vector.
///
/// # Example
///
/// ```
/// use comdml_collective::TopKSparsifier;
///
/// let sparse = TopKSparsifier::new(2).sparsify(&[0.1, -5.0, 0.3, 4.0]);
/// assert_eq!(sparse.nnz(), 2);
/// let dense = sparse.densify();
/// assert_eq!(dense, vec![0.0, -5.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKSparsifier {
    k: usize,
}

/// A sparsified vector: the surviving (index, value) pairs plus the
/// original length.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    len: usize,
    entries: Vec<(u32, f32)>,
}

impl TopKSparsifier {
    /// Creates a sparsifier keeping the `k` largest-magnitude entries.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k needs k >= 1");
        Self { k }
    }

    /// A sparsifier keeping the given fraction of entries (GossipFL-style
    /// compression ratios).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_fraction(fraction: f64, len: usize) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1], got {fraction}");
        Self::new(((len as f64 * fraction).ceil() as usize).max(1))
    }

    /// Sparsifies `values`, keeping ties deterministically (lowest index).
    pub fn sparsify(&self, values: &[f32]) -> SparseVector {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| {
            values[b]
                .abs()
                .partial_cmp(&values[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut entries: Vec<(u32, f32)> = order
            .into_iter()
            .take(self.k.min(values.len()))
            .map(|i| (i as u32, values[i]))
            .collect();
        entries.sort_by_key(|&(i, _)| i);
        SparseVector { len: values.len(), entries }
    }
}

impl SparseVector {
    /// Number of retained entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Original dense length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original vector had zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Wire size in bytes (4-byte index + 4-byte value per entry).
    pub fn byte_size(&self) -> usize {
        self.entries.len() * 8
    }

    /// Restores a dense vector with zeros in the dropped positions.
    pub fn densify(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Accumulates this sparse delta onto a dense buffer (the receiver-side
    /// application in gossip exchange).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length differs from the original length.
    pub fn add_into(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.len, "length mismatch");
        for &(i, v) in &self.entries {
            dense[i as usize] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest_magnitudes() {
        let s = TopKSparsifier::new(3).sparsify(&[1.0, -10.0, 0.5, 7.0, -2.0]);
        assert_eq!(s.densify(), vec![0.0, -10.0, 0.0, 7.0, -2.0]);
    }

    #[test]
    fn fraction_constructor_rounds_up() {
        let sp = TopKSparsifier::with_fraction(0.01, 850_000);
        let s = sp.sparsify(&vec![1.0; 850_000]);
        assert_eq!(s.nnz(), 8_500);
        // ~50x compression: 8 bytes/entry * 8500 vs 4 bytes * 850k.
        assert!(s.byte_size() * 40 < 850_000 * 4);
    }

    #[test]
    fn k_larger_than_input_keeps_everything() {
        let values = vec![3.0, -1.0];
        let s = TopKSparsifier::new(10).sparsify(&values);
        assert_eq!(s.densify(), values);
    }

    #[test]
    fn add_into_accumulates() {
        let s = TopKSparsifier::new(1).sparsify(&[0.0, 5.0, 0.0]);
        let mut acc = vec![1.0f32; 3];
        s.add_into(&mut acc);
        assert_eq!(acc, vec![1.0, 6.0, 1.0]);
    }

    #[test]
    fn sparsification_error_is_bounded_by_dropped_mass() {
        let values: Vec<f32> = (0..100).map(|i| (i as f32) / 100.0).collect();
        let s = TopKSparsifier::new(50).sparsify(&values);
        let dense = s.densify();
        let err: f32 =
            values.iter().zip(dense.iter()).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt();
        // Dropped entries are exactly the 50 smallest (0.00..0.49).
        let dropped: f32 = (0..50).map(|i| (i as f32 / 100.0).powi(2)).sum::<f32>().sqrt();
        assert!((err - dropped).abs() < 1e-4);
    }
}
