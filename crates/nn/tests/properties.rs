//! Property tests for the training engine: gradient correctness and split
//! consistency on randomly generated models and inputs.

use comdml_nn::{models, CrossEntropyLoss, LocalLossSplit, Sequential};
use comdml_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Splitting a model at any cut and chaining the halves must equal the
    /// unsplit forward pass.
    #[test]
    fn split_forward_equals_full_forward(
        seed in 0u64..u64::MAX,
        hidden in 2usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = models::mlp(&[4, hidden, hidden, 3], &mut rng);
        let x = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let y_full = model.forward(&x).unwrap();

        let n = model.len();
        let cut = ((n as f64) * cut_frac) as usize;
        let (mut pre, mut suf) = model.split_at(cut).unwrap();
        let mid = if pre.is_empty() { x.clone() } else { pre.forward(&x).unwrap() };
        let y_split = if suf.is_empty() { mid } else { suf.forward(&mid).unwrap() };
        for (a, b) in y_full.data().iter().zip(y_split.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Cross-entropy gradients always sum to ~0 per row and the loss is
    /// non-negative.
    #[test]
    fn cross_entropy_invariants(
        seed in 0u64..u64::MAX,
        batch in 1usize..8,
        classes in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[batch, classes], 2.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|b| b % classes).collect();
        let (loss, grad) = CrossEntropyLoss::evaluate(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for b in 0..batch {
            let s: f32 = grad.data()[b * classes..(b + 1) * classes].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// A LocalLossSplit's predict equals the original model's forward before
    /// any training has modified the weights.
    #[test]
    fn split_predict_matches_original(seed in 0u64..u64::MAX, offload in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut original = models::mlp(&[3, 10, 10, 2], &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let expect = original.forward(&x).unwrap();

        // Rebuild an identical model from the same seed and split it.
        let mut rng2 = StdRng::seed_from_u64(seed);
        let clone = models::mlp(&[3, 10, 10, 2], &mut rng2);
        let mut split = LocalLossSplit::from_sequential(clone, offload, 2, &mut rng2).unwrap();
        let got = split.predict(&x).unwrap();
        for (a, b) in expect.data().iter().zip(got.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// set_parameters(parameters()) is the identity for any model.
    #[test]
    fn parameter_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model: Sequential = models::tiny_cnn(2, 4, &mut rng);
        let params = model.parameters();
        model.set_parameters(&params).unwrap();
        prop_assert_eq!(model.parameters(), params);
    }
}
