use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// An ordered pipeline of layers — the model container that split training
/// cuts into a slow-side prefix and fast-side suffix.
///
/// # Example
///
/// ```
/// use comdml_nn::{Dense, Relu, Sequential};
/// use comdml_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 8, &mut rng));
/// model.push(Relu::new());
/// model.push(Dense::new(8, 2, &mut rng));
/// let y = model.forward(&Tensor::zeros(&[5, 4]))?;
/// assert_eq!(y.shape(), &[5, 2]);
/// # Ok::<(), comdml_nn::NnError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (used when splitting models at runtime).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Splits the model at `cut`, returning `(prefix, suffix)` where the
    /// prefix keeps the first `cut` layers. Either side may be empty.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSplit`] if `cut > len()`.
    pub fn split_at(self, cut: usize) -> Result<(Sequential, Sequential), NnError> {
        if cut > self.layers.len() {
            return Err(NnError::BadSplit { cut, layers: self.layers.len() });
        }
        let mut layers = self.layers;
        let suffix = layers.split_off(cut);
        Ok((Sequential { layers }, Sequential { layers: suffix }))
    }

    /// Consumes the model and returns its boxed layers in order.
    pub fn into_layers(self) -> Vec<Box<dyn Layer>> {
        self.layers
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs the full backward pass, returning the gradient w.r.t. the input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (e.g. backward before forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Clones of all parameters, layer by layer.
    pub fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    /// Clones of all gradients from the last backward pass.
    pub fn gradients(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(|l| l.gradients()).collect()
    }

    /// Total number of parameter tensors.
    pub fn num_param_tensors(&self) -> usize {
        self.layers.iter().map(|l| l.num_param_tensors()).sum()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.parameters().iter().map(Tensor::len).sum()
    }

    /// Overwrites all parameters (same order as [`Sequential::parameters`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the arity does not match, or a layer
    /// error on shape mismatch.
    pub fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        let expected: usize = self.layers.iter().map(|l| l.num_param_tensors()).sum();
        if params.len() != expected {
            return Err(NnError::BadInput {
                layer: "sequential",
                expected: format!("{expected} parameter tensors"),
                got: vec![params.len()],
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.num_param_tensors();
            layer.set_parameters(&params[offset..offset + n])?;
            offset += n;
        }
        Ok(())
    }

    /// Infers the output shape for a given input shape by running a
    /// single-sample forward pass on zeros (used to size auxiliary heads).
    ///
    /// # Errors
    ///
    /// Propagates layer errors from the probe forward pass.
    pub fn infer_output_shape(&mut self, input_shape: &[usize]) -> Result<Vec<usize>, NnError> {
        let mut probe_shape = input_shape.to_vec();
        probe_shape[0] = 1;
        let out = self.forward(&Tensor::zeros(&probe_shape))?;
        Ok(out.shape().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(rng: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(3, 5, rng));
        m.push(Relu::new());
        m.push(Dense::new(5, 2, rng));
        m
    }

    #[test]
    fn forward_chains_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = model(&mut rng);
        let y = m.forward(&Tensor::zeros(&[4, 3])).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
    }

    #[test]
    fn parameters_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = model(&mut rng);
        let params = m.parameters();
        assert_eq!(params.len(), 4);
        let doubled: Vec<Tensor> = params.iter().map(|p| p.scale(2.0)).collect();
        m.set_parameters(&doubled).unwrap();
        assert_eq!(m.parameters()[0], params[0].scale(2.0));
    }

    #[test]
    fn set_parameters_validates_arity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = model(&mut rng);
        assert!(m.set_parameters(&[]).is_err());
    }

    #[test]
    fn split_at_partitions_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = model(&mut rng);
        let (pre, suf) = m.split_at(1).unwrap();
        assert_eq!(pre.len(), 1);
        assert_eq!(suf.len(), 2);
    }

    #[test]
    fn split_beyond_len_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = model(&mut rng);
        assert!(matches!(m.split_at(9), Err(NnError::BadSplit { cut: 9, layers: 3 })));
    }

    #[test]
    fn split_then_chain_equals_original() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = model(&mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let y_full = m.forward(&x).unwrap();
        let (mut pre, mut suf) = m.split_at(2).unwrap();
        let mid = pre.forward(&x).unwrap();
        let y_split = suf.forward(&mid).unwrap();
        for (a, b) in y_full.data().iter().zip(y_split.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn infer_output_shape_uses_single_sample() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = model(&mut rng);
        assert_eq!(m.infer_output_shape(&[64, 3]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn num_params_counts_scalars() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = model(&mut rng);
        assert_eq!(m.num_params(), 3 * 5 + 5 + 5 * 2 + 2);
    }
}
