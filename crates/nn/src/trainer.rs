use comdml_tensor::{SgdMomentum, Tensor};

use crate::{CrossEntropyLoss, NnError, Sequential};

/// One plain (non-split) SGD training step: forward, cross-entropy,
/// backward, parameter update. Returns the batch loss.
///
/// # Errors
///
/// Propagates layer/loss errors.
///
/// # Example
///
/// ```
/// use comdml_nn::{models, train_step};
/// use comdml_tensor::{SgdMomentum, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = models::mlp(&[4, 8, 2], &mut rng);
/// let mut opt = SgdMomentum::new(0.05, 0.9);
/// let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
/// let loss = train_step(&mut model, &x, &[0, 1, 0, 1, 0, 1, 0, 1], &mut opt)?;
/// assert!(loss.is_finite());
/// # Ok::<(), comdml_nn::NnError>(())
/// ```
pub fn train_step(
    model: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    opt: &mut SgdMomentum,
) -> Result<f32, NnError> {
    let logits = model.forward(x)?;
    let (loss, grad) = CrossEntropyLoss::evaluate(&logits, labels)?;
    model.backward(&grad)?;
    let mut params = model.parameters();
    let grads = model.gradients();
    opt.step(&mut params, &grads)?;
    model.set_parameters(&params)?;
    Ok(loss)
}

/// Classification accuracy of `model` on `(x, labels)`.
///
/// # Errors
///
/// Propagates layer errors; returns 0 accuracy for an empty batch.
pub fn accuracy(model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
    if labels.is_empty() {
        return Ok(0.0);
    }
    let logits = model.forward(x)?;
    let preds = logits.argmax_rows()?;
    let correct = preds.iter().zip(labels.iter()).filter(|(p, y)| p == y).count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Convenience wrapper owning a model and its optimizer.
///
/// Used by the baselines and examples to train one agent's local model for
/// one epoch per round, matching the paper's "local epoch was consistently
/// set to one".
#[derive(Debug)]
pub struct Trainer {
    model: Sequential,
    opt: SgdMomentum,
}

impl Trainer {
    /// Wraps a model with an SGD-with-momentum optimizer.
    pub fn new(model: Sequential, lr: f32, momentum: f32) -> Self {
        Self { model, opt: SgdMomentum::new(lr, momentum) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the wrapped model (e.g. for aggregation).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Trains on one batch, returning the loss.
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors.
    pub fn step(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
        train_step(&mut self.model, x, labels, &mut self.opt)
    }

    /// Trains one epoch over a list of batches, returning the mean loss.
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors.
    pub fn epoch(&mut self, batches: &[(Tensor, Vec<usize>)]) -> Result<f32, NnError> {
        if batches.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for (x, y) in batches {
            total += self.step(x, y)?;
        }
        Ok(total / batches.len() as f32)
    }

    /// Decays the learning rate by `factor` (plateau schedule).
    pub fn decay_lr(&mut self, factor: f32) {
        self.opt.decay(factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n_per_class: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        // Two well-separated Gaussian blobs in 2-D.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..2usize {
            let center = if c == 0 { -2.0f32 } else { 2.0 };
            for _ in 0..n_per_class {
                let noise = Tensor::randn(&[2], 0.5, rng);
                xs.push(center + noise.data()[0]);
                xs.push(center + noise.data()[1]);
                ys.push(c);
            }
        }
        (Tensor::from_vec(xs, &[2 * n_per_class, 2]).unwrap(), ys)
    }

    #[test]
    fn mlp_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = models::mlp(&[2, 8, 2], &mut rng);
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let (x, y) = blobs(32, &mut rng);
        let first = train_step(&mut model, &x, &y, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..100 {
            last = train_step(&mut model, &x, &y, &mut opt).unwrap();
        }
        assert!(last < 0.1, "loss should collapse: {first} -> {last}");
        assert!(accuracy(&mut model, &x, &y).unwrap() > 0.95);
    }

    #[test]
    fn trainer_epoch_averages_losses() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = models::mlp(&[2, 4, 2], &mut rng);
        let mut trainer = Trainer::new(model, 0.05, 0.9);
        let (x, y) = blobs(8, &mut rng);
        let batches = vec![(x.clone(), y.clone()), (x, y)];
        let loss = trainer.epoch(&batches).unwrap();
        assert!(loss > 0.0 && loss.is_finite());
        assert_eq!(trainer.epoch(&[]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_on_empty_batch_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = models::mlp(&[2, 4, 2], &mut rng);
        let x = Tensor::zeros(&[0, 2]);
        assert_eq!(accuracy(&mut model, &x, &[]).unwrap(), 0.0);
    }

    #[test]
    fn decay_reduces_future_step_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = models::mlp(&[2, 4, 2], &mut rng);
        let mut trainer = Trainer::new(model, 0.1, 0.0);
        trainer.decay_lr(0.1);
        // After heavy decay the params barely move.
        let before = trainer.model().parameters();
        let (x, y) = blobs(4, &mut rng);
        trainer.step(&x, &y).unwrap();
        let after = trainer.model().parameters();
        let delta: f32 =
            before.iter().zip(after.iter()).map(|(a, b)| a.sub(b).unwrap().norm()).sum();
        assert!(delta < 0.5, "decayed steps should be small, moved {delta}");
    }
}
