//! Ready-made model builders used by tests, examples and the real-training
//! experiments.
//!
//! These are miniature stand-ins for the paper's ResNet-56/110: they have
//! the same structural skeleton (conv stem → residual stages → global pool →
//! FC) at a scale that trains in seconds on a CPU. The *timing* experiments
//! use the analytic `comdml-cost` profiles of the full-size models; these
//! real models demonstrate that local-loss split training converges
//! (Theorem 1) with actual gradients.

use rand::Rng;

use crate::{AvgPool2d, Conv2d, Dense, Flatten, GlobalAvgPool, Relu, Residual, Sequential};

/// Builds an MLP with ReLU between consecutive [`Dense`] layers.
///
/// # Panics
///
/// Panics if fewer than two dims are given.
///
/// # Example
///
/// ```
/// use comdml_nn::models;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let m = models::mlp(&[16, 32, 4], &mut rng);
/// assert_eq!(m.len(), 3); // dense, relu, dense
/// ```
pub fn mlp<R: Rng>(dims: &[usize], rng: &mut R) -> Sequential {
    assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
    let mut model = Sequential::new();
    for (i, w) in dims.windows(2).enumerate() {
        model.push(Dense::new(w[0], w[1], rng));
        if i + 2 < dims.len() {
            model.push(Relu::new());
        }
    }
    model
}

/// A small CNN for `[batch, in_channels, 8, 8]` inputs: two conv/ReLU
/// stages with pooling, then a dense classifier.
pub fn tiny_cnn<R: Rng>(in_channels: usize, num_classes: usize, rng: &mut R) -> Sequential {
    let mut model = Sequential::new();
    model.push(Conv2d::new(in_channels, 8, 3, 1, 1, rng));
    model.push(Relu::new());
    model.push(AvgPool2d::new(2)); // 8x8 -> 4x4
    model.push(Conv2d::new(8, 16, 3, 1, 1, rng));
    model.push(Relu::new());
    model.push(Flatten::new());
    model.push(Dense::new(16 * 4 * 4, num_classes, rng));
    model
}

/// A miniature ResNet for `[batch, in_channels, 8, 8]` inputs: a conv stem,
/// `blocks_per_stage` residual blocks at 8 channels, a strided conv to 16
/// channels, `blocks_per_stage` more blocks, then global pool + FC — the
/// same skeleton as the paper's CIFAR ResNets at 1/1000 the compute.
pub fn mini_resnet<R: Rng>(
    in_channels: usize,
    blocks_per_stage: usize,
    num_classes: usize,
    rng: &mut R,
) -> Sequential {
    let mut model = Sequential::new();
    model.push(Conv2d::new(in_channels, 8, 3, 1, 1, rng));
    model.push(Relu::new());
    for _ in 0..blocks_per_stage {
        let mut body = Sequential::new();
        body.push(Conv2d::new(8, 8, 3, 1, 1, rng));
        body.push(Relu::new());
        body.push(Conv2d::new(8, 8, 3, 1, 1, rng));
        model.push(Residual::new(body));
        model.push(Relu::new());
    }
    model.push(Conv2d::new(8, 16, 3, 2, 1, rng)); // downsample 8x8 -> 4x4
    model.push(Relu::new());
    for _ in 0..blocks_per_stage {
        let mut body = Sequential::new();
        body.push(Conv2d::new(16, 16, 3, 1, 1, rng));
        body.push(Relu::new());
        body.push(Conv2d::new(16, 16, 3, 1, 1, rng));
        model.push(Residual::new(body));
        model.push(Relu::new());
    }
    model.push(GlobalAvgPool::new());
    model.push(Dense::new(16, num_classes, rng));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use comdml_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&[10, 20, 5], &mut rng);
        let y = m.forward(&Tensor::zeros(&[3, 10])).unwrap();
        assert_eq!(y.shape(), &[3, 5]);
    }

    #[test]
    fn tiny_cnn_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = tiny_cnn(3, 10, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 3, 8, 8])).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn mini_resnet_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = mini_resnet(3, 2, 4, &mut rng);
        let y = m.forward(&Tensor::zeros(&[2, 3, 8, 8])).unwrap();
        assert_eq!(y.shape(), &[2, 4]);
    }

    #[test]
    fn mini_resnet_depth_scales_with_blocks() {
        let mut rng = StdRng::seed_from_u64(3);
        let shallow = mini_resnet(3, 1, 4, &mut rng);
        let deep = mini_resnet(3, 3, 4, &mut rng);
        assert!(deep.len() > shallow.len());
        assert!(deep.num_params() > shallow.num_params());
    }
}
