use comdml_tensor::{SgdMomentum, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CrossEntropyLoss, Dense, GlobalAvgPool, Layer, NnError, Sequential};

/// The auxiliary network attached to the slow agent-side model (§III-B):
/// a global average pool (for spatial activations) followed by a fully
/// connected layer to the class logits, "following the approach in \[4\], \[15\]".
#[derive(Debug)]
pub struct AuxHead {
    pool: Option<GlobalAvgPool>,
    fc: Dense,
}

impl AuxHead {
    /// Builds an auxiliary head for activations of `activation_shape`
    /// (`[batch, c]` or `[batch, c, h, w]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for unsupported activation ranks.
    pub fn for_activation<R: Rng>(
        activation_shape: &[usize],
        num_classes: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        match activation_shape.len() {
            2 => Ok(Self { pool: None, fc: Dense::new(activation_shape[1], num_classes, rng) }),
            4 => Ok(Self {
                pool: Some(GlobalAvgPool::new()),
                fc: Dense::new(activation_shape[1], num_classes, rng),
            }),
            _ => Err(NnError::BadInput {
                layer: "aux_head",
                expected: "[batch, c] or [batch, c, h, w]".to_string(),
                got: activation_shape.to_vec(),
            }),
        }
    }

    /// Forward pass to logits.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward(&mut self, activation: &Tensor) -> Result<Tensor, NnError> {
        let pooled = match &mut self.pool {
            Some(p) => p.forward(activation)?,
            None => activation.clone(),
        };
        self.fc.forward(&pooled)
    }

    /// Backward pass from the logits gradient to the activation gradient.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor, NnError> {
        let g = self.fc.backward(grad_logits)?;
        match &mut self.pool {
            Some(p) => p.backward(&g),
            None => Ok(g),
        }
    }

    /// Clones of the head's parameters.
    pub fn parameters(&self) -> Vec<Tensor> {
        self.fc.parameters()
    }

    /// Clones of the head's gradients.
    pub fn gradients(&self) -> Vec<Tensor> {
        self.fc.gradients()
    }

    /// Overwrites the head's parameters.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        self.fc.set_parameters(params)
    }
}

/// A pair of SGD optimizers, one per side of the split.
#[derive(Debug, Clone)]
pub struct SgdPair {
    /// Optimizer for the slow side (prefix + auxiliary head).
    pub slow: SgdMomentum,
    /// Optimizer for the fast side (offloaded suffix).
    pub fast: SgdMomentum,
}

impl SgdPair {
    /// Creates both optimizers with the same hyper-parameters (the paper uses
    /// one global learning-rate schedule).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { slow: SgdMomentum::new(lr, momentum), fast: SgdMomentum::new(lr, momentum) }
    }
}

/// Losses from one local-loss split training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitLosses {
    /// Cross-entropy of the slow side's auxiliary head.
    pub slow_loss: f32,
    /// Cross-entropy of the fast side's output head.
    pub fast_loss: f32,
}

/// Local-loss split training of one model cut in two (§III-B).
///
/// The slow side holds the first `L − offload` layers plus an [`AuxHead`];
/// the fast side holds the offloaded suffix. [`LocalLossSplit::train_step`]
/// performs the paper's parallel update: the slow side backpropagates only
/// through its auxiliary loss (eq. 2) and the fast side trains on the
/// *detached* intermediate activation `z` (eq. 3) — no gradient ever crosses
/// the cut, which is exactly why split communication stays unidirectional.
#[derive(Debug)]
pub struct LocalLossSplit {
    slow: Sequential,
    fast: Sequential,
    aux: Option<AuxHead>,
    aux_seed: u64,
    num_classes: usize,
    offload: usize,
    activation_noise_std: f32,
    noise_rng: StdRng,
}

impl LocalLossSplit {
    /// Cuts `model` so the last `offload` layers belong to the fast side.
    ///
    /// The auxiliary head is created lazily on the first forward pass, when
    /// the activation shape at the cut is known.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSplit`] if `offload >= model.len()` — the slow
    /// agent must keep at least one layer (and with `offload = 0` use plain
    /// local training instead).
    pub fn from_sequential<R: Rng>(
        model: Sequential,
        offload: usize,
        num_classes: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        let layers = model.len();
        if offload >= layers {
            return Err(NnError::BadSplit { cut: offload, layers });
        }
        let (slow, fast) = model.split_at(layers - offload)?;
        let aux_seed: u64 = rng.gen();
        Ok(Self {
            slow,
            fast,
            aux: None,
            aux_seed,
            num_classes,
            offload,
            activation_noise_std: 0.0,
            noise_rng: StdRng::seed_from_u64(aux_seed ^ 0x9e37),
        })
    }

    /// Adds zero-mean Gaussian noise of the given standard deviation to the
    /// activation crossing the cut before the fast side consumes it — a
    /// practical stand-in for the distance-correlation-minimizing
    /// regularizers of §IV-C (noise at the cut directly lowers the dCor
    /// between raw inputs and what the fast agent observes).
    pub fn set_activation_noise(&mut self, std: f32, seed: u64) {
        self.activation_noise_std = std.max(0.0);
        self.noise_rng = StdRng::seed_from_u64(seed);
    }

    /// The slow-side activation for `x` (what would cross the cut), without
    /// protection noise — used by leakage metrics like distance correlation.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn slow_activation(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.slow.forward(x)
    }

    /// Number of offloaded layers.
    pub fn offload(&self) -> usize {
        self.offload
    }

    /// The slow-side model (prefix).
    pub fn slow_side(&self) -> &Sequential {
        &self.slow
    }

    /// The fast-side model (offloaded suffix).
    pub fn fast_side(&self) -> &Sequential {
        &self.fast
    }

    fn ensure_aux(&mut self, activation: &Tensor) -> Result<(), NnError> {
        if self.aux.is_none() {
            let mut rng = StdRng::seed_from_u64(self.aux_seed);
            self.aux =
                Some(AuxHead::for_activation(activation.shape(), self.num_classes, &mut rng)?);
        }
        Ok(())
    }

    /// One parallel local-loss update on a batch `(x, labels)`.
    ///
    /// Both sides are updated with their own optimizer; the activation
    /// crossing the cut is detached (no gradient flows back), mirroring the
    /// unidirectional communication of §III-B.
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors (bad shapes, bad labels).
    pub fn train_step(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opts: &mut SgdPair,
    ) -> Result<SplitLosses, NnError> {
        // Slow side: forward to the cut, train via the auxiliary loss.
        let z = self.slow.forward(x)?;
        self.ensure_aux(&z)?;
        let aux = self.aux.as_mut().expect("aux initialized above");
        let logits = aux.forward(&z)?;
        let (slow_loss, grad_logits) = CrossEntropyLoss::evaluate(&logits, labels)?;
        let grad_z = aux.backward(&grad_logits)?;
        self.slow.backward(&grad_z)?;

        let mut slow_params = self.slow.parameters();
        slow_params.extend(aux.parameters());
        let mut slow_grads = self.slow.gradients();
        slow_grads.extend(aux.gradients());
        opts.slow.step(&mut slow_params, &slow_grads)?;
        let n_slow = self.slow.num_param_tensors();
        self.slow.set_parameters(&slow_params[..n_slow])?;
        aux.set_parameters(&slow_params[n_slow..])?;

        // Fast side: train on the detached activation. If nothing was
        // offloaded the fast side is empty and contributes no loss.
        let fast_loss = if self.fast.is_empty() {
            0.0
        } else {
            let z_detached = if self.activation_noise_std > 0.0 {
                let noise =
                    Tensor::randn(z.shape(), self.activation_noise_std, &mut self.noise_rng);
                z.add(&noise)?
            } else {
                z.clone()
            };
            let out = self.fast.forward(&z_detached)?;
            let (fast_loss, grad_out) = CrossEntropyLoss::evaluate(&out, labels)?;
            self.fast.backward(&grad_out)?;
            let mut fast_params = self.fast.parameters();
            let fast_grads = self.fast.gradients();
            opts.fast.step(&mut fast_params, &fast_grads)?;
            self.fast.set_parameters(&fast_params)?;
            fast_loss
        };

        Ok(SplitLosses { slow_loss, fast_loss })
    }

    /// Full-model inference: slow prefix then fast suffix (the deployed
    /// model has no auxiliary head).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn predict(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let z = self.slow.forward(x)?;
        if self.fast.is_empty() {
            Ok(z)
        } else {
            self.fast.forward(&z)
        }
    }

    /// Clones of the *global-model* parameters (slow prefix + fast suffix,
    /// excluding the auxiliary head) — the payload that AllReduce averages.
    pub fn full_parameters(&self) -> Vec<Tensor> {
        let mut p = self.slow.parameters();
        p.extend(self.fast.parameters());
        p
    }

    /// Overwrites the global-model parameters (same order as
    /// [`LocalLossSplit::full_parameters`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on arity mismatch.
    pub fn set_full_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        let n_slow = self.slow.num_param_tensors();
        let n_fast = self.fast.num_param_tensors();
        if params.len() != n_slow + n_fast {
            return Err(NnError::BadInput {
                layer: "local_loss_split",
                expected: format!("{} parameter tensors", n_slow + n_fast),
                got: vec![params.len()],
            });
        }
        self.slow.set_parameters(&params[..n_slow])?;
        self.fast.set_parameters(&params[n_slow..])
    }

    /// Reunites the two sides into a single [`Sequential`] (dropping the
    /// auxiliary head), e.g. after training finishes.
    pub fn into_sequential(self) -> Sequential {
        let mut model = self.slow;
        for layer in self.fast.into_layers() {
            model.push_boxed(layer);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;

    fn xor_batch() -> (Tensor, Vec<usize>) {
        // A linearly non-separable toy task: class = parity of signs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let pts: [(f32, f32); 4] = [(1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (-1.0, -1.0)];
        for rep in 0..16 {
            for (i, &(a, b)) in pts.iter().enumerate() {
                let jitter = (rep as f32) * 0.001;
                xs.extend_from_slice(&[a + jitter, b - jitter]);
                ys.push(if i == 1 || i == 2 { 1 } else { 0 });
            }
        }
        (Tensor::from_vec(xs, &[64, 2]).unwrap(), ys)
    }

    #[test]
    fn both_sides_learn_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = models::mlp(&[2, 16, 16, 2], &mut rng);
        // Offload the last dense layer (and its preceding ReLU).
        let mut split = LocalLossSplit::from_sequential(model, 2, 2, &mut rng).unwrap();
        let (x, y) = xor_batch();
        let mut opts = SgdPair::new(0.1, 0.9);
        let first = split.train_step(&x, &y, &mut opts).unwrap();
        let mut last = first;
        for _ in 0..300 {
            last = split.train_step(&x, &y, &mut opts).unwrap();
        }
        assert!(last.slow_loss < first.slow_loss * 0.5, "slow: {first:?} -> {last:?}");
        assert!(last.fast_loss < 0.2, "fast side should fit XOR, got {last:?}");
    }

    #[test]
    fn predict_uses_both_sides() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = models::mlp(&[4, 8, 3], &mut rng);
        let mut split = LocalLossSplit::from_sequential(model, 1, 3, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 4]);
        let out = split.predict(&x).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
    }

    #[test]
    fn offloading_whole_model_is_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = models::mlp(&[4, 8, 3], &mut rng);
        let n = model.len();
        assert!(matches!(
            LocalLossSplit::from_sequential(model, n, 3, &mut rng),
            Err(NnError::BadSplit { .. })
        ));
    }

    #[test]
    fn full_parameters_round_trip() {
        let mut rng = StdRng::seed_from_u64(10);
        let model = models::mlp(&[4, 8, 3], &mut rng);
        let mut split = LocalLossSplit::from_sequential(model, 1, 3, &mut rng).unwrap();
        let params = split.full_parameters();
        let doubled: Vec<Tensor> = params.iter().map(|p| p.scale(2.0)).collect();
        split.set_full_parameters(&doubled).unwrap();
        assert_eq!(split.full_parameters()[0], params[0].scale(2.0));
    }

    #[test]
    fn zero_offload_trains_slow_side_only() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = models::mlp(&[2, 8, 2], &mut rng);
        let mut split = LocalLossSplit::from_sequential(model, 0, 2, &mut rng).unwrap();
        let (x, y) = xor_batch();
        let mut opts = SgdPair::new(0.05, 0.9);
        let losses = split.train_step(&x, &y, &mut opts).unwrap();
        assert_eq!(losses.fast_loss, 0.0);
        assert!(losses.slow_loss > 0.0);
    }

    #[test]
    fn cnn_split_trains_with_spatial_aux_head() {
        let mut rng = StdRng::seed_from_u64(12);
        let model = models::tiny_cnn(1, 3, &mut rng);
        // Cut inside the conv stack so the aux head needs pooling.
        let mut split = LocalLossSplit::from_sequential(model, 4, 3, &mut rng).unwrap();
        let x = Tensor::randn(&[6, 1, 8, 8], 1.0, &mut rng);
        let y = vec![0, 1, 2, 0, 1, 2];
        let mut opts = SgdPair::new(0.05, 0.9);
        let mut losses = split.train_step(&x, &y, &mut opts).unwrap();
        for _ in 0..30 {
            losses = split.train_step(&x, &y, &mut opts).unwrap();
        }
        assert!(losses.slow_loss.is_finite() && losses.fast_loss.is_finite());
    }
}
