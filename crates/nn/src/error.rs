use std::error::Error;
use std::fmt;

use comdml_tensor::TensorError;

/// Errors produced by the training engine.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An input did not match the layer's expected shape.
    BadInput {
        /// The layer reporting the problem.
        layer: &'static str,
        /// Description of the expectation.
        expected: String,
        /// The offending shape.
        got: Vec<usize>,
    },
    /// `backward` was called before `forward` cached its context.
    NoForwardContext {
        /// The layer reporting the problem.
        layer: &'static str,
    },
    /// Labels were inconsistent with the logits batch.
    BadLabels {
        /// Number of rows in the logits.
        batch: usize,
        /// Number of labels supplied.
        labels: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A split point was out of range for the model.
    BadSplit {
        /// Requested cut index.
        cut: usize,
        /// Number of layers in the model.
        layers: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, expected, got } => {
                write!(f, "{layer}: expected {expected}, got shape {got:?}")
            }
            NnError::NoForwardContext { layer } => {
                write!(f, "{layer}: backward called before forward")
            }
            NnError::BadLabels { batch, labels, classes } => write!(
                f,
                "labels mismatch: {labels} labels for batch of {batch} with {classes} classes"
            ),
            NnError::BadSplit { cut, layers } => {
                write!(f, "split point {cut} invalid for a model with {layers} layers")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
