/// He (Kaiming) initialization standard deviation for a layer with the given
/// fan-in, the standard choice for ReLU networks like the paper's ResNets.
///
/// # Example
///
/// ```
/// let std = comdml_nn::he_std(128);
/// assert!((std - (2.0f32 / 128.0).sqrt()).abs() < 1e-7);
/// ```
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::he_std;

    #[test]
    fn matches_formula() {
        assert!((he_std(50) - 0.2f32).abs() < 1e-6);
    }

    #[test]
    fn zero_fan_in_is_safe() {
        assert!(he_std(0).is_finite());
    }
}
