//! Neural-network training engine with local-loss split training.
//!
//! ComDML offloads the *suffix* of a model from a slow agent to a fast one
//! and trains the two sides in parallel using local-loss-based split
//! training (§III-B): the slow side appends a small auxiliary head (global
//! average pool + fully connected layer) and trains against its own local
//! loss, while the fast side trains on the *detached* activations streamed
//! from the slow side. Neither side waits for backpropagated gradients from
//! the other — that is the communication saving over classic split learning.
//!
//! This crate implements that machinery for real: [`Layer`]s with full
//! forward/backward passes, [`Sequential`] models, the [`CrossEntropyLoss`],
//! the [`AuxHead`], and [`LocalLossSplit`] which cuts a model in two and
//! trains both sides exactly as the paper prescribes.
//!
//! # Example: split a model and train both sides
//!
//! ```
//! use comdml_nn::{models, LocalLossSplit, SgdPair};
//! use comdml_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = models::mlp(&[8, 16, 16, 4], &mut rng);
//! // Offload the last layer to the fast agent.
//! let mut split = LocalLossSplit::from_sequential(model, 1, 4, &mut rng).unwrap();
//! let x = Tensor::randn(&[10, 8], 1.0, &mut rng);
//! let y = vec![0usize; 10];
//! let mut opts = SgdPair::new(0.01, 0.9);
//! let losses = split.train_step(&x, &y, &mut opts).unwrap();
//! assert!(losses.slow_loss.is_finite() && losses.fast_loss.is_finite());
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod error;
mod init;
mod layer;
mod layers;
mod loss;
pub mod models;
mod schedule;
mod sequential;
mod split;
mod trainer;

pub use error::NnError;
pub use init::he_std;
pub use layer::Layer;
pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, MaxPool2d, Relu,
    Residual,
};
pub use loss::CrossEntropyLoss;
pub use schedule::ReduceOnPlateau;
pub use sequential::Sequential;
pub use split::{AuxHead, LocalLossSplit, SgdPair, SplitLosses};
pub use trainer::{accuracy, train_step, Trainer};
