use std::fmt;

use comdml_tensor::Tensor;

use crate::NnError;

/// A differentiable layer.
///
/// Layers cache whatever context they need during [`Layer::forward`] and
/// consume it in [`Layer::backward`], which receives the gradient of the
/// loss with respect to the layer output and must return the gradient with
/// respect to the layer input, accumulating parameter gradients internally.
///
/// The trait is object-safe: models store `Box<dyn Layer>` so split models
/// can cut layer lists at arbitrary boundaries at runtime. It requires
/// `Send` so models can move across threads/tasks (agents run concurrently
/// in the tokio runtime and in multi-threaded fleets).
pub trait Layer: fmt::Debug + Send {
    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Computes the layer output for `input`, caching backward context.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input shape is unsupported.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates `grad_out` (gradient w.r.t. the forward output) backward,
    /// returning the gradient w.r.t. the forward input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardContext`] if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Clones of the layer's parameter tensors (empty for stateless layers).
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Clones of the parameter gradients accumulated by the last `backward`,
    /// in the same order as [`Layer::parameters`].
    fn gradients(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Overwrites the layer's parameters (same order/shapes as
    /// [`Layer::parameters`]).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if shapes mismatch.
    fn set_parameters(&mut self, _params: &[Tensor]) -> Result<(), NnError> {
        Ok(())
    }

    /// Number of parameter tensors this layer owns.
    fn num_param_tensors(&self) -> usize {
        0
    }
}
