//! Learning-rate scheduling utilities.

/// Reduce-on-plateau learning-rate schedule — the paper's §V-A policy:
/// "Upon the accuracy reached a plateau, the learning rate was reduced by a
/// factor of 0.2 when there were 10 agents" (0.5 at larger scales).
///
/// Feed it the monitored metric (accuracy) each round; when the metric has
/// not improved by at least `min_delta` for `patience` rounds it reports a
/// decay, which the caller applies to its optimizer(s).
///
/// # Example
///
/// ```
/// use comdml_nn::ReduceOnPlateau;
///
/// let mut sched = ReduceOnPlateau::new(0.2, 2, 0.001);
/// assert_eq!(sched.observe(0.50), None);
/// assert_eq!(sched.observe(0.60), None);   // improving
/// assert_eq!(sched.observe(0.60), None);   // stalled (1)
/// assert_eq!(sched.observe(0.60), Some(0.2)); // stalled (2) -> decay
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceOnPlateau {
    factor: f32,
    patience: usize,
    min_delta: f32,
    best: f32,
    stalled: usize,
}

impl ReduceOnPlateau {
    /// Creates a schedule decaying by `factor` after `patience` rounds
    /// without a `min_delta` improvement.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1)` or `patience` is zero.
    pub fn new(factor: f32, patience: usize, min_delta: f32) -> Self {
        assert!(factor > 0.0 && factor < 1.0, "decay factor must be in (0, 1), got {factor}");
        assert!(patience > 0, "patience must be positive");
        Self { factor, patience, min_delta, best: f32::NEG_INFINITY, stalled: 0 }
    }

    /// The paper's 10-agent configuration (factor 0.2).
    pub fn paper_small_fleet() -> Self {
        Self::new(0.2, 3, 1e-3)
    }

    /// The paper's 20/50/100-agent configuration (factor 0.5).
    pub fn paper_large_fleet() -> Self {
        Self::new(0.5, 3, 1e-3)
    }

    /// Records the latest metric; returns `Some(factor)` when the caller
    /// should decay its learning rate.
    pub fn observe(&mut self, metric: f32) -> Option<f32> {
        if metric > self.best + self.min_delta {
            self.best = metric;
            self.stalled = 0;
            return None;
        }
        self.stalled += 1;
        if self.stalled >= self.patience {
            self.stalled = 0;
            Some(self.factor)
        } else {
            None
        }
    }

    /// The best metric observed so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut s = ReduceOnPlateau::new(0.5, 2, 0.0);
        assert_eq!(s.observe(0.1), None);
        assert_eq!(s.observe(0.1), None); // stalled 1
        assert_eq!(s.observe(0.2), None); // improved, reset
        assert_eq!(s.observe(0.2), None); // stalled 1
        assert_eq!(s.observe(0.2), Some(0.5)); // stalled 2
    }

    #[test]
    fn decay_fires_repeatedly_on_long_plateaus() {
        let mut s = ReduceOnPlateau::new(0.2, 2, 0.0);
        s.observe(0.5);
        let decays: Vec<Option<f32>> = (0..8).map(|_| s.observe(0.5)).collect();
        let fired = decays.iter().filter(|d| d.is_some()).count();
        assert_eq!(fired, 4, "every `patience` rounds: {decays:?}");
    }

    #[test]
    fn min_delta_ignores_noise() {
        let mut s = ReduceOnPlateau::new(0.2, 2, 0.05);
        s.observe(0.50);
        assert_eq!(s.observe(0.52), None); // below min_delta: stalled 1
        assert_eq!(s.observe(0.53), Some(0.2)); // stalled 2 -> decay
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn rejects_factor_of_one() {
        let _ = ReduceOnPlateau::new(1.0, 2, 0.0);
    }

    #[test]
    fn integrates_with_optimizer() {
        use comdml_tensor::SgdMomentum;
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let mut sched = ReduceOnPlateau::paper_small_fleet();
        for _ in 0..4 {
            if let Some(f) = sched.observe(0.7) {
                opt.decay(f);
            }
        }
        assert!((opt.learning_rate() - 0.02).abs() < 1e-7);
    }
}
