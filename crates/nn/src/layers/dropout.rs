use comdml_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Layer, NnError};

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and scales survivors by `1/(1−p)` so the expected
/// activation is unchanged; [`Dropout::eval_mode`] turns it into a no-op for
/// inference.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: bool,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1), got {p}");
        Self { p, training: true, rng: StdRng::seed_from_u64(seed), mask: None }
    }

    /// Switches to inference behaviour (identity).
    pub fn eval_mode(&mut self) {
        self.training = false;
    }

    /// Switches back to training behaviour.
    pub fn train_mode(&mut self) {
        self.training = true;
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if !self.training || self.p == 0.0 {
            self.mask = Some(vec![1.0; input.len()]);
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let data = input.data().iter().zip(mask.iter()).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Ok(Tensor::from_vec(data, input.shape())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.take().ok_or(NnError::NoForwardContext { layer: "dropout" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "dropout",
                expected: format!("{} elements", mask.len()),
                got: grad_out.shape().to_vec(),
            });
        }
        let data = grad_out.data().iter().zip(mask.iter()).map(|(&g, &m)| g * m).collect();
        Ok(Tensor::from_vec(data, grad_out.shape())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.eval_mode();
        let x = Tensor::ones(&[8]);
        assert_eq!(d.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_drops_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "dropped {zeros}");
        // Survivors are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[50_000]);
        let y = d.forward(&x).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x).unwrap();
        let g = d.backward(&Tensor::ones(&[64])).unwrap();
        // Gradient must be zero exactly where the forward output was zero.
        for (a, b) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
