mod batchnorm;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod maxpool;
mod pool;
mod relu;
mod residual;

pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use maxpool::MaxPool2d;
pub use pool::{AvgPool2d, GlobalAvgPool};
pub use relu::Relu;
pub use residual::Residual;
