use comdml_tensor::Tensor;
use rand::Rng;

use crate::{he_std, Layer, NnError};

/// A 2-D convolution over `[batch, C_in, H, W]` inputs with square kernels,
/// configurable stride and symmetric zero padding.
///
/// The implementation is a straightforward direct convolution — clarity over
/// throughput — but forward and backward are exact, which the numerical
/// gradient tests verify.
///
/// # Example
///
/// ```
/// use comdml_nn::{Conv2d, Layer};
/// use comdml_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng); // 3x3, stride 1, pad 1
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]))?;
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// # Ok::<(), comdml_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor, // [c_out, c_in, k, k]
    bias: Tensor,   // [c_out]
    grad_w: Tensor,
    grad_b: Tensor,
    stride: usize,
    padding: usize,
    input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new<R: Rng>(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = c_in * kernel * kernel;
        Self {
            weight: Tensor::randn(&[c_out, c_in, kernel, kernel], he_std(fan_in), rng),
            bias: Tensor::zeros(&[c_out]),
            grad_w: Tensor::zeros(&[c_out, c_in, kernel, kernel]),
            grad_b: Tensor::zeros(&[c_out]),
            stride,
            padding,
            input: None,
        }
    }

    /// Output spatial size for an input of `h` pixels.
    pub fn out_dim(&self, h: usize) -> usize {
        let k = self.weight.shape()[2];
        (h + 2 * self.padding - k) / self.stride + 1
    }

    fn c_in(&self) -> usize {
        self.weight.shape()[1]
    }

    fn c_out(&self) -> usize {
        self.weight.shape()[0]
    }

    fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.shape()[1] != self.c_in() {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[batch, {}, h, w]", self.c_in()),
                got: input.shape().to_vec(),
            });
        }
        let (batch, c_in, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (c_out, k, s, p) = (self.c_out(), self.kernel(), self.stride, self.padding);
        let (ho, wo) = (self.out_dim(h), self.out_dim(w));
        let x = input.data();
        let wgt = self.weight.data();
        let bias = self.bias.data();
        let mut out = vec![0.0f32; batch * c_out * ho * wo];

        for b in 0..batch {
            for co in 0..c_out {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = bias[co];
                        for ci in 0..c_in {
                            for ky in 0..k {
                                let iy = oy * s + ky;
                                if iy < p || iy - p >= h {
                                    continue;
                                }
                                let iy = iy - p;
                                for kx in 0..k {
                                    let ix = ox * s + kx;
                                    if ix < p || ix - p >= w {
                                        continue;
                                    }
                                    let ix = ix - p;
                                    let xv = x[((b * c_in + ci) * h + iy) * w + ix];
                                    let wv = wgt[((co * c_in + ci) * k + ky) * k + kx];
                                    acc += xv * wv;
                                }
                            }
                        }
                        out[((b * c_out + co) * ho + oy) * wo + ox] = acc;
                    }
                }
            }
        }
        self.input = Some(input.clone());
        Ok(Tensor::from_vec(out, &[batch, c_out, ho, wo])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.input.take().ok_or(NnError::NoForwardContext { layer: "conv2d" })?;
        let (batch, c_in, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (c_out, k, s, p) = (self.c_out(), self.kernel(), self.stride, self.padding);
        let (ho, wo) = (self.out_dim(h), self.out_dim(w));
        if grad_out.shape() != [batch, c_out, ho, wo] {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!("[{batch}, {c_out}, {ho}, {wo}]"),
                got: grad_out.shape().to_vec(),
            });
        }
        let x = input.data();
        let wgt = self.weight.data();
        let gy = grad_out.data();
        let mut gx = vec![0.0f32; batch * c_in * h * w];
        let mut gw = vec![0.0f32; c_out * c_in * k * k];
        let mut gb = vec![0.0f32; c_out];

        for b in 0..batch {
            for co in 0..c_out {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = gy[((b * c_out + co) * ho + oy) * wo + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[co] += g;
                        for ci in 0..c_in {
                            for ky in 0..k {
                                let iy = oy * s + ky;
                                if iy < p || iy - p >= h {
                                    continue;
                                }
                                let iy = iy - p;
                                for kx in 0..k {
                                    let ix = ox * s + kx;
                                    if ix < p || ix - p >= w {
                                        continue;
                                    }
                                    let ix = ix - p;
                                    let xi = ((b * c_in + ci) * h + iy) * w + ix;
                                    let wi = ((co * c_in + ci) * k + ky) * k + kx;
                                    gw[wi] += g * x[xi];
                                    gx[xi] += g * wgt[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        self.grad_w = Tensor::from_vec(gw, self.weight.shape())?;
        self.grad_b = Tensor::from_vec(gb, &[c_out])?;
        Ok(Tensor::from_vec(gx, &[batch, c_in, h, w])?)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn gradients(&self) -> Vec<Tensor> {
        vec![self.grad_w.clone(), self.grad_b.clone()]
    }

    fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.weight.shape()
            || params[1].shape() != self.bias.shape()
        {
            return Err(NnError::BadInput {
                layer: "conv2d",
                expected: format!(
                    "params shaped {:?} and {:?}",
                    self.weight.shape(),
                    self.bias.shape()
                ),
                got: params.first().map(|t| t.shape().to_vec()).unwrap_or_default(),
            });
        }
        self.weight = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn num_param_tensors(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.set_parameters(&[Tensor::ones(&[1, 1, 1, 1]), Tensor::zeros(&[1])]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        assert_eq!(conv.forward(&x).unwrap().data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        // Sum kernel: output = sum of the 3x3 window.
        conv.set_parameters(&[Tensor::ones(&[1, 1, 3, 3]), Tensor::zeros(&[1])]).unwrap();
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 45.0);
    }

    #[test]
    fn padding_preserves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[1, 2, 6, 6])).unwrap();
        assert_eq!(y.shape(), &[1, 4, 6, 6]);
    }

    #[test]
    fn stride_two_halves_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 2, 1, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 8, 8])).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn input_gradient_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(5);
        let make = |rng: &mut StdRng| Conv2d::new(2, 2, 3, 1, 1, rng);
        let mut conv = make(&mut rng);
        let params = conv.parameters();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x).unwrap();
        let gx = conv.backward(&Tensor::ones(y.shape())).unwrap();

        let eps = 1e-2f32;
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let mut c2 = make(&mut rng);
            c2.set_parameters(&params).unwrap();
            let lp = c2.forward(&xp).unwrap().sum();
            let lm = c2.forward(&xm).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.data()[idx] - num).abs() < 2e-2, "idx {idx}: {} vs {num}", gx.data()[idx]);
        }
    }

    #[test]
    fn weight_gradient_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(6);
        let make = |rng: &mut StdRng| Conv2d::new(1, 2, 3, 1, 1, rng);
        let mut conv = make(&mut rng);
        let params = conv.parameters();
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x).unwrap();
        conv.backward(&Tensor::ones(y.shape())).unwrap();
        let gw = conv.gradients()[0].clone();

        let eps = 1e-2f32;
        for idx in [0usize, 4, 9, 17] {
            let mut wp = params[0].clone();
            wp.data_mut()[idx] += eps;
            let mut wm = params[0].clone();
            wm.data_mut()[idx] -= eps;
            let mut cp = make(&mut rng);
            cp.set_parameters(&[wp, params[1].clone()]).unwrap();
            let mut cm = make(&mut rng);
            cm.set_parameters(&[wm, params[1].clone()]).unwrap();
            let lp = cp.forward(&x).unwrap().sum();
            let lm = cm.forward(&x).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gw.data()[idx] - num).abs() < 5e-2, "idx {idx}: {} vs {num}", gw.data()[idx]);
        }
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 8, 8])).is_err());
    }
}
