use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// Batch normalization over the channel dimension of `[batch, C, H, W]`
/// inputs — the normalization the paper's ResNet-56/110 use between
/// convolutions.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (momentum 0.9); [`BatchNorm2d::eval_mode`] switches to the
/// running statistics for inference. Scale (`γ`) and shift (`β`) are
/// trainable.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    training: bool,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batch norm needs at least one channel");
        Self {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            eps: 1e-5,
            training: true,
            cache: None,
        }
    }

    /// Switches to inference statistics.
    pub fn eval_mode(&mut self) {
        self.training = false;
    }

    /// Switches back to batch statistics.
    pub fn train_mode(&mut self) {
        self.training = true;
    }

    fn channels(&self) -> usize {
        self.gamma.len()
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batch_norm2d"
    }

    #[allow(clippy::needless_range_loop)] // channel-strided indexing
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.shape()[1] != self.channels() {
            return Err(NnError::BadInput {
                layer: "batch_norm2d",
                expected: format!("[batch, {}, h, w]", self.channels()),
                got: input.shape().to_vec(),
            });
        }
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let n_per_c = (b * h * w) as f32;
        let x = input.data();
        let mut out = vec![0.0f32; x.len()];
        let mut x_hat = vec![0.0f32; x.len()];
        let mut inv_stds = vec![0.0f32; c];

        for ci in 0..c {
            let (mean, var) = if self.training {
                let mut mean = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * h * w;
                    mean += x[base..base + h * w].iter().sum::<f32>();
                }
                mean /= n_per_c;
                let mut var = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * h * w;
                    var += x[base..base + h * w].iter().map(|&v| (v - mean).powi(2)).sum::<f32>();
                }
                var /= n_per_c;
                self.running_mean[ci] =
                    self.momentum * self.running_mean[ci] + (1.0 - self.momentum) * mean;
                self.running_var[ci] =
                    self.momentum * self.running_var[ci] + (1.0 - self.momentum) * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = self.gamma.data()[ci];
            let be = self.beta.data()[ci];
            for bi in 0..b {
                let base = (bi * c + ci) * h * w;
                for i in base..base + h * w {
                    let xh = (x[i] - mean) * inv_std;
                    x_hat[i] = xh;
                    out[i] = g * xh + be;
                }
            }
        }
        self.cache = Some(BnCache { x_hat, inv_std: inv_stds, shape: input.shape().to_vec() });
        Ok(Tensor::from_vec(out, input.shape())?)
    }

    #[allow(clippy::needless_range_loop)] // channel-strided indexing
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or(NnError::NoForwardContext { layer: "batch_norm2d" })?;
        let (b, c, h, w) = (cache.shape[0], cache.shape[1], cache.shape[2], cache.shape[3]);
        let n_per_c = (b * h * w) as f32;
        let gy = grad_out.data();
        let mut gx = vec![0.0f32; gy.len()];
        let mut g_gamma = vec![0.0f32; c];
        let mut g_beta = vec![0.0f32; c];

        for ci in 0..c {
            // Accumulate per-channel sums for the BN backward formula.
            let mut sum_gy = 0.0f32;
            let mut sum_gy_xhat = 0.0f32;
            for bi in 0..b {
                let base = (bi * c + ci) * h * w;
                for i in base..base + h * w {
                    sum_gy += gy[i];
                    sum_gy_xhat += gy[i] * cache.x_hat[i];
                }
            }
            g_beta[ci] = sum_gy;
            g_gamma[ci] = sum_gy_xhat;
            let g = self.gamma.data()[ci];
            let inv_std = cache.inv_std[ci];
            for bi in 0..b {
                let base = (bi * c + ci) * h * w;
                for i in base..base + h * w {
                    // dx = γ/σ · (dy − mean(dy) − x̂·mean(dy·x̂))
                    gx[i] = g
                        * inv_std
                        * (gy[i] - sum_gy / n_per_c - cache.x_hat[i] * sum_gy_xhat / n_per_c);
                }
            }
        }
        self.grad_gamma = Tensor::from_vec(g_gamma, &[c])?;
        self.grad_beta = Tensor::from_vec(g_beta, &[c])?;
        Ok(Tensor::from_vec(gx, &cache.shape)?)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn gradients(&self) -> Vec<Tensor> {
        vec![self.grad_gamma.clone(), self.grad_beta.clone()]
    }

    fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.gamma.shape()
            || params[1].shape() != self.beta.shape()
        {
            return Err(NnError::BadInput {
                layer: "batch_norm2d",
                expected: format!("two tensors shaped {:?}", self.gamma.shape()),
                got: params.first().map(|p| p.shape().to_vec()).unwrap_or_default(),
            });
        }
        self.gamma = params[0].clone();
        self.beta = params[1].clone();
        Ok(())
    }

    fn num_param_tensors(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_normalized_in_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], 3.0, &mut rng).map(|v| v + 5.0);
        let y = bn.forward(&x).unwrap();
        // Per channel: mean ~0, var ~1.
        for ci in 0..3 {
            let mut vals = Vec::new();
            for bi in 0..8 {
                let base = (bi * 3 + ci) * 16;
                vals.extend_from_slice(&y.data()[base..base + 16]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        // Warm up running stats with consistent batches.
        for _ in 0..200 {
            let x = Tensor::randn(&[16, 2, 2, 2], 2.0, &mut rng).map(|v| v + 3.0);
            bn.forward(&x).unwrap();
        }
        bn.eval_mode();
        // A wildly different input must be normalized with the *running*
        // stats (mean ~3, var ~4), not its own.
        let x = Tensor::full(&[4, 2, 2, 2], 3.0);
        let y = bn.forward(&x).unwrap();
        for v in y.data() {
            assert!(v.abs() < 0.3, "value {v} should be near (3-3)/2 = 0");
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[2, 1, 2, 2], 1.0, &mut rng);
        let y = bn.forward(&x).unwrap();
        // Loss = weighted sum with varied weights (sum alone has zero grad
        // through normalization).
        let weights: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) / 3.0).collect();
        let gy = Tensor::from_vec(weights.clone(), y.shape()).unwrap();
        let gx = bn.backward(&gy).unwrap();

        let eps = 1e-2f32;
        for idx in [0usize, 3, 6] {
            let loss = |x: &Tensor| {
                let mut bn2 = BatchNorm2d::new(1);
                let y = bn2.forward(x).unwrap();
                y.data().iter().zip(weights.iter()).map(|(a, b)| a * b).sum::<f32>()
            };
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((gx.data()[idx] - num).abs() < 2e-2, "idx {idx}: {} vs {num}", gx.data()[idx]);
        }
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 2, 2], 1.0, &mut rng);
        let y = bn.forward(&x).unwrap();
        bn.backward(&Tensor::ones(y.shape())).unwrap();
        let grads = bn.gradients();
        assert_eq!(grads.len(), 2);
        // dβ = sum(dy) = 16 per channel.
        assert!((grads[1].data()[0] - 16.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(4);
        assert!(bn.forward(&Tensor::zeros(&[1, 3, 2, 2])).is_err());
    }
}
