use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// Flattens `[batch, ...]` inputs into `[batch, features]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() < 2 {
            return Err(NnError::BadInput {
                layer: "flatten",
                expected: "rank >= 2".to_string(),
                got: input.shape().to_vec(),
            });
        }
        let batch = input.shape()[0];
        let features = input.len() / batch;
        self.input_shape = Some(input.shape().to_vec());
        Ok(input.reshape(&[batch, features])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape =
            self.input_shape.take().ok_or(NnError::NoForwardContext { layer: "flatten" })?;
        Ok(grad_out.reshape(&shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&Tensor::zeros(&[2, 48])).unwrap();
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn rejects_rank_one() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[4])).is_err());
    }
}
