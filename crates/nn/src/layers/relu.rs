use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.take().ok_or(NnError::NoForwardContext { layer: "relu" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: "relu",
                expected: format!("{} elements", mask.len()),
                got: grad_out.shape().to_vec(),
            });
        }
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(data, grad_out.shape())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(r.forward(&x).unwrap().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap();
        r.forward(&x).unwrap();
        let g = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[2]).unwrap()).unwrap();
        assert_eq!(g.data(), &[0.0, 7.0]);
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::zeros(&[1])).is_err());
    }
}
