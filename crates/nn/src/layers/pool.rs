use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// Non-overlapping average pooling with a square window over
/// `[batch, C, H, W]` inputs.
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average pool with the given window (and equal stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        Self { window, input_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4
            || !input.shape()[2].is_multiple_of(self.window)
            || !input.shape()[3].is_multiple_of(self.window)
        {
            return Err(NnError::BadInput {
                layer: "avg_pool2d",
                expected: format!("[batch, c, h, w] with h, w divisible by {}", self.window),
                got: input.shape().to_vec(),
            });
        }
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        let x = input.data();
        let norm = 1.0 / (k * k) as f32;
        let mut out = vec![0.0f32; b * c * ho * wo];
        for bi in 0..b {
            for ci in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += x[((bi * c + ci) * h + oy * k + ky) * w + ox * k + kx];
                            }
                        }
                        out[((bi * c + ci) * ho + oy) * wo + ox] = acc * norm;
                    }
                }
            }
        }
        self.input_shape = Some(input.shape().to_vec());
        Ok(Tensor::from_vec(out, &[b, c, ho, wo])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape =
            self.input_shape.take().ok_or(NnError::NoForwardContext { layer: "avg_pool2d" })?;
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        let gy = grad_out.data();
        let norm = 1.0 / (k * k) as f32;
        let mut gx = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = gy[((bi * c + ci) * ho + oy) * wo + ox] * norm;
                        for ky in 0..k {
                            for kx in 0..k {
                                gx[((bi * c + ci) * h + oy * k + ky) * w + ox * k + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(gx, &shape)?)
    }
}

/// Global average pooling: `[batch, C, H, W] → [batch, C]`.
///
/// This is the first half of the paper's auxiliary network ("a fully
/// connected layer and an average pooling layer", §V-A).
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 {
            return Err(NnError::BadInput {
                layer: "global_avg_pool",
                expected: "[batch, c, h, w]".to_string(),
                got: input.shape().to_vec(),
            });
        }
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let x = input.data();
        let norm = 1.0 / (h * w) as f32;
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                out[bi * c + ci] = x[base..base + h * w].iter().sum::<f32>() * norm;
            }
        }
        self.input_shape = Some(input.shape().to_vec());
        Ok(Tensor::from_vec(out, &[b, c])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .input_shape
            .take()
            .ok_or(NnError::NoForwardContext { layer: "global_avg_pool" })?;
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let gy = grad_out.data();
        let norm = 1.0 / (h * w) as f32;
        let mut gx = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let g = gy[bi * c + ci] * norm;
                let base = (bi * c + ci) * h * w;
                for v in &mut gx[base..base + h * w] {
                    *v = g;
                }
            }
        }
        Ok(Tensor::from_vec(gx, &shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_averages_windows() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_gradient() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        p.forward(&x).unwrap();
        let g = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_rejects_indivisible_dims() {
        let mut p = AvgPool2d::new(2);
        assert!(p.forward(&Tensor::zeros(&[1, 1, 3, 4])).is_err());
    }

    #[test]
    fn global_pool_means_each_channel() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2])
            .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 25.0]);
    }

    #[test]
    fn global_pool_backward_is_uniform() {
        let mut p = GlobalAvgPool::new();
        p.forward(&Tensor::zeros(&[1, 1, 2, 2])).unwrap();
        let g = p.backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap()).unwrap();
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }
}
