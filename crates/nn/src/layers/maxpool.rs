use comdml_tensor::Tensor;

use crate::{Layer, NnError};

/// Non-overlapping max pooling with a square window over
/// `[batch, C, H, W]` inputs.
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (input shape ref via indices, chosen indices)
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max pool with the given window (and equal stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        Self { window, argmax: None, input_shape: None }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4
            || !input.shape()[2].is_multiple_of(self.window)
            || !input.shape()[3].is_multiple_of(self.window)
        {
            return Err(NnError::BadInput {
                layer: "max_pool2d",
                expected: format!("[batch, c, h, w] with h, w divisible by {}", self.window),
                got: input.shape().to_vec(),
            });
        }
        let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let k = self.window;
        let (ho, wo) = (h / k, w / k);
        let x = input.data();
        let mut out = vec![0.0f32; b * c * ho * wo];
        let mut winners = vec![0usize; b * c * ho * wo];
        for bi in 0..b {
            for ci in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = ((bi * c + ci) * h + oy * k + ky) * w + ox * k + kx;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((bi * c + ci) * ho + oy) * wo + ox;
                        out[o] = best;
                        winners[o] = best_idx;
                    }
                }
            }
        }
        self.input_shape = Some(input.shape().to_vec());
        self.argmax = Some((vec![b * c * h * w], winners));
        Ok(Tensor::from_vec(out, &[b, c, ho, wo])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let shape =
            self.input_shape.take().ok_or(NnError::NoForwardContext { layer: "max_pool2d" })?;
        let (total, winners) =
            self.argmax.take().ok_or(NnError::NoForwardContext { layer: "max_pool2d" })?;
        let mut gx = vec![0.0f32; total[0]];
        for (o, &src) in winners.iter().enumerate() {
            gx[src] += grad_out.data()[o];
        }
        Ok(Tensor::from_vec(gx, &shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0, 1.0, 9.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.data(), &[8.0, 6.0, 9.0, 7.0]);
    }

    #[test]
    fn backward_routes_gradient_to_winner() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        p.forward(&x).unwrap();
        let g = p.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.data(), &[0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_indivisible_dims() {
        let mut p = MaxPool2d::new(2);
        assert!(p.forward(&Tensor::zeros(&[1, 1, 5, 4])).is_err());
    }
}
