use comdml_tensor::Tensor;
use rand::Rng;

use crate::{he_std, Layer, NnError};

/// A fully connected layer: `y = x·W + b` over `[batch, in]` inputs.
///
/// # Example
///
/// ```
/// use comdml_nn::{Dense, Layer};
/// use comdml_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut fc = Dense::new(4, 2, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[3, 4]))?;
/// assert_eq!(y.shape(), &[3, 2]);
/// # Ok::<(), comdml_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Tensor, // [in, out]
    bias: Tensor,   // [out]
    grad_w: Tensor,
    grad_b: Tensor,
    input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights and zero bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self {
            weight: Tensor::randn(&[in_features, out_features], he_std(in_features), rng),
            bias: Tensor::zeros(&[out_features]),
            grad_w: Tensor::zeros(&[in_features, out_features]),
            grad_b: Tensor::zeros(&[out_features]),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.shape()[1] != self.in_features() {
            return Err(NnError::BadInput {
                layer: "dense",
                expected: format!("[batch, {}]", self.in_features()),
                got: input.shape().to_vec(),
            });
        }
        let mut out = input.matmul(&self.weight)?;
        let (batch, n_out) = (out.shape()[0], out.shape()[1]);
        let bias = self.bias.data().to_vec();
        let data = out.data_mut();
        for b in 0..batch {
            for (j, &bv) in bias.iter().enumerate() {
                data[b * n_out + j] += bv;
            }
        }
        self.input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self.input.take().ok_or(NnError::NoForwardContext { layer: "dense" })?;
        // dW = x^T · dy ; db = column sums of dy ; dx = dy · W^T
        self.grad_w = input.transpose()?.matmul(grad_out)?;
        let (batch, n_out) = (grad_out.shape()[0], grad_out.shape()[1]);
        let mut gb = vec![0.0f32; n_out];
        for b in 0..batch {
            for (j, g) in gb.iter_mut().enumerate() {
                *g += grad_out.data()[b * n_out + j];
            }
        }
        self.grad_b = Tensor::from_vec(gb, &[n_out])?;
        Ok(grad_out.matmul(&self.weight.transpose()?)?)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn gradients(&self) -> Vec<Tensor> {
        vec![self.grad_w.clone(), self.grad_b.clone()]
    }

    fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        if params.len() != 2
            || params[0].shape() != self.weight.shape()
            || params[1].shape() != self.bias.shape()
        {
            return Err(NnError::BadInput {
                layer: "dense",
                expected: format!(
                    "params shaped {:?} and {:?}",
                    self.weight.shape(),
                    self.bias.shape()
                ),
                got: params.first().map(|p| p.shape().to_vec()).unwrap_or_default(),
            });
        }
        self.weight = params[0].clone();
        self.bias = params[1].clone();
        Ok(())
    }

    fn num_param_tensors(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(1);
        Dense::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_applies_weight_and_bias() {
        let mut fc = layer();
        fc.set_parameters(&[
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]).unwrap(),
            Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
        ])
        .unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = fc.forward(&x).unwrap();
        // y0 = 1*1 + 2*0 + 3*0 + 0.5 ; y1 = 1*0 + 2*1 + 3*0 - 0.5
        assert_eq!(y.data(), &[1.5, 1.5]);
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut fc = layer();
        let x = Tensor::from_vec(vec![0.3, -0.6, 0.9, 0.1, 0.5, -0.2], &[2, 3]).unwrap();
        let y = fc.forward(&x).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let gy = Tensor::ones(y.shape());
        let gx = fc.backward(&gy).unwrap();

        // Numerical check of dL/dx[0][1].
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.data_mut()[1] += eps;
        let mut xm = x.clone();
        xm.data_mut()[1] -= eps;
        let mut fc2 = layer();
        let lp = fc2.forward(&xp).unwrap().sum();
        let lm = fc2.forward(&xm).unwrap().sum();
        let num = (lp - lm) / (2.0 * eps);
        assert!((gx.data()[1] - num).abs() < 1e-2, "{} vs {num}", gx.data()[1]);
    }

    #[test]
    fn weight_gradient_matches_numerical() {
        let mut fc = layer();
        let x = Tensor::from_vec(vec![0.3, -0.6, 0.9], &[1, 3]).unwrap();
        let y = fc.forward(&x).unwrap();
        fc.backward(&Tensor::ones(y.shape())).unwrap();
        let gw = fc.gradients()[0].clone();

        let eps = 1e-3f32;
        let params = fc.parameters();
        for idx in [0usize, 3] {
            let mut wp = params[0].clone();
            wp.data_mut()[idx] += eps;
            let mut wm = params[0].clone();
            wm.data_mut()[idx] -= eps;
            let mut f_p = layer();
            f_p.set_parameters(&[wp, params[1].clone()]).unwrap();
            let mut f_m = layer();
            f_m.set_parameters(&[wm, params[1].clone()]).unwrap();
            let lp = f_p.forward(&x).unwrap().sum();
            let lm = f_m.forward(&x).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gw.data()[idx] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut fc = layer();
        assert!(matches!(
            fc.forward(&Tensor::zeros(&[2, 5])),
            Err(NnError::BadInput { layer: "dense", .. })
        ));
    }

    #[test]
    fn backward_without_forward_fails() {
        let mut fc = layer();
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::NoForwardContext { .. })
        ));
    }
}
