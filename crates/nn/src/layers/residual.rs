use comdml_tensor::Tensor;

use crate::{Layer, NnError, Sequential};

/// A residual block: `y = body(x) + x`, the structural motif of the paper's
/// ResNet-56/110 models.
///
/// The wrapped body must preserve the input shape (identity shortcut only —
/// the projection shortcut of downsampling blocks is modelled as a plain
/// strided convolution outside the block in our miniature ResNets).
#[derive(Debug)]
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps `body` in an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Self { body }
    }

    /// The wrapped body.
    pub fn body(&self) -> &Sequential {
        &self.body
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = self.body.forward(input)?;
        if out.shape() != input.shape() {
            return Err(NnError::BadInput {
                layer: "residual",
                expected: format!("body preserving shape {:?}", input.shape()),
                got: out.shape().to_vec(),
            });
        }
        Ok(out.add(input)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let g_body = self.body.backward(grad_out)?;
        Ok(g_body.add(grad_out)?)
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.body.parameters()
    }

    fn gradients(&self) -> Vec<Tensor> {
        self.body.gradients()
    }

    fn set_parameters(&mut self, params: &[Tensor]) -> Result<(), NnError> {
        self.body.set_parameters(params)
    }

    fn num_param_tensors(&self) -> usize {
        self.body.num_param_tensors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block(rng: &mut StdRng) -> Residual {
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 2, 3, 1, 1, rng));
        body.push(Relu::new());
        body.push(Conv2d::new(2, 2, 3, 1, 1, rng));
        Residual::new(body)
    }

    #[test]
    fn zero_body_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut res = block(&mut rng);
        // Zero the body weights so body(x) == 0 and y == x.
        let zeros: Vec<Tensor> =
            res.parameters().iter().map(|p| Tensor::zeros(p.shape())).collect();
        res.set_parameters(&zeros).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = res.forward(&x).unwrap();
        for (a, b) in y.data().iter().zip(x.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_adds_identity_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut res = block(&mut rng);
        let zeros: Vec<Tensor> =
            res.parameters().iter().map(|p| Tensor::zeros(p.shape())).collect();
        res.set_parameters(&zeros).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        res.forward(&x).unwrap();
        let g = Tensor::ones(&[1, 2, 4, 4]);
        let gx = res.backward(&g).unwrap();
        // With a zero body (and ReLU of 0 passing no gradient), only the
        // shortcut carries gradient: gx == g.
        for (a, b) in gx.data().iter().zip(g.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn shape_changing_body_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Conv2d::new(2, 4, 3, 1, 1, &mut rng)); // changes channels
        let mut res = Residual::new(body);
        assert!(res.forward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
    }
}
