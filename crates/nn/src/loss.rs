use comdml_tensor::Tensor;

use crate::NnError;

/// Numerically stable softmax cross-entropy loss.
///
/// Computes the mean negative log-likelihood over the batch and the gradient
/// with respect to the logits (`softmax(z) − onehot(y)` scaled by `1/batch`).
///
/// # Example
///
/// ```
/// use comdml_nn::CrossEntropyLoss;
/// use comdml_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let (loss, _grad) = CrossEntropyLoss::evaluate(&logits, &[0, 1])?;
/// assert!(loss < 0.2); // confident and correct
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Computes `(mean_loss, grad_logits)` for `[batch, classes]` logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadLabels`] if the label count differs from the
    /// batch size or any label is out of range, and [`NnError::BadInput`]
    /// for non-matrix logits.
    pub fn evaluate(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
        if logits.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "cross_entropy",
                expected: "[batch, classes]".to_string(),
                got: logits.shape().to_vec(),
            });
        }
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        if labels.len() != batch || labels.iter().any(|&y| y >= classes) {
            return Err(NnError::BadLabels { batch, labels: labels.len(), classes });
        }
        let z = logits.data();
        let mut grad = vec![0.0f32; batch * classes];
        let mut loss = 0.0f64;
        let inv_batch = 1.0 / batch as f32;
        for b in 0..batch {
            let row = &z[b * classes..(b + 1) * classes];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let y = labels[b];
            loss += -((exps[y] / sum).max(1e-12).ln()) as f64;
            for (c, &e) in exps.iter().enumerate() {
                let p = e / sum;
                grad[b * classes + c] = (p - if c == y { 1.0 } else { 0.0 }) * inv_batch;
            }
        }
        Ok(((loss / batch as f64) as f32, Tensor::from_vec(grad, &[batch, classes])?))
    }

    /// Softmax probabilities for `[batch, classes]` logits (used by privacy
    /// and evaluation utilities).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] for non-matrix logits.
    pub fn softmax(logits: &Tensor) -> Result<Tensor, NnError> {
        if logits.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "softmax",
                expected: "[batch, classes]".to_string(),
                got: logits.shape().to_vec(),
            });
        }
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        let z = logits.data();
        let mut out = vec![0.0f32; batch * classes];
        for b in 0..batch {
            let row = &z[b * classes..(b + 1) * classes];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (c, &e) in exps.iter().enumerate() {
                out[b * classes + c] = e / sum;
            }
        }
        Ok(Tensor::from_vec(out, &[batch, classes])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, _) = CrossEntropyLoss::evaluate(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0], &[2, 3]).unwrap();
        let (_, grad) = CrossEntropyLoss::evaluate(&logits, &[2, 0]).unwrap();
        for b in 0..2 {
            let s: f32 = grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.1], &[1, 3]).unwrap();
        let (_, grad) = CrossEntropyLoss::evaluate(&logits, &[1]).unwrap();
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = CrossEntropyLoss::evaluate(&lp, &[1]).unwrap();
            let (fm, _) = CrossEntropyLoss::evaluate(&lm, &[1]).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!((grad.data()[idx] - num).abs() < 1e-3);
        }
    }

    #[test]
    fn extreme_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]).unwrap();
        let (loss, grad) = CrossEntropyLoss::evaluate(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bad_labels_rejected() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(CrossEntropyLoss::evaluate(&logits, &[0]).is_err());
        assert!(CrossEntropyLoss::evaluate(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = CrossEntropyLoss::softmax(&logits).unwrap();
        for b in 0..2 {
            let s: f32 = p.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
