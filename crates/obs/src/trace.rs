//! The JSONL trace sink behind `COMDML_TRACE`.
//!
//! When active, every trace event is one single-line JSON object appended
//! to the configured file — `{"t":"<kind>","seq":N,...}` — rendered with
//! the shared [`Value`] writer so floats round-trip exactly. The `seq`
//! counter orders events across threads (wall-clock timestamps would make
//! trace files non-comparable; durations appear as explicit `ms` fields).
//!
//! Event kinds emitted by the workspace:
//!
//! | `t`      | fields                                    | emitted by |
//! |----------|-------------------------------------------|------------|
//! | `span`   | `name`, `ms`                              | [`crate::phase`] guards |
//! | `log`    | `level`, `target`, `msg`                  | the log macros |
//! | `round`  | `round`, `participants`, `round_s`, …     | `core::FleetSim` |
//! | `job`    | `scenario`, `method`, `seed`, …           | `exp::SweepRunner` |
//!
//! Unknown kinds are legal — `trace_check` validates the envelope
//! (`t` + `seq`) for every line and field shapes for the kinds it knows.
//!
//! Tracing observes the run and never perturbs it: the sink is fed only
//! already-computed values, touches no RNG stream, and simulation digests
//! stay byte-identical with it on (pinned by `crates/exp/tests/obs.rs`
//! and the CI `obs-smoke` diff).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Value;
use crate::Level;

#[derive(Debug)]
struct TraceState {
    on: AtomicBool,
    seq: AtomicU64,
    sink: Mutex<Option<BufWriter<File>>>,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState {
        on: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        sink: Mutex::new(None),
    })
}

/// Whether the trace sink is active.
pub fn trace_enabled() -> bool {
    crate::ensure_init();
    state().on.load(Ordering::Relaxed)
}

/// Opens (truncating) `path` as the trace sink and enables tracing and
/// metrics. `COMDML_TRACE=<path>` does this automatically on first use;
/// this is the programmatic path for tests and bins.
///
/// # Errors
///
/// Propagates the file-creation failure; tracing stays off.
pub fn set_trace_path(path: impl AsRef<Path>) -> std::io::Result<()> {
    crate::ensure_init();
    set_trace_path_inner(path.as_ref())?;
    crate::set_metrics_enabled(true);
    Ok(())
}

/// The non-initializing core of [`set_trace_path`] (also called from env
/// init, where re-entering `ensure_init` would deadlock).
pub(crate) fn set_trace_path_inner(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let st = state();
    *st.sink.lock().expect("trace sink lock never poisoned") = Some(BufWriter::new(file));
    st.seq.store(0, Ordering::Relaxed);
    st.on.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flushes and closes the sink; tracing goes inactive.
pub fn disable_trace() {
    let st = state();
    st.on.store(false, Ordering::Relaxed);
    if let Some(mut w) = st.sink.lock().expect("trace sink lock never poisoned").take() {
        let _ = w.flush();
    }
}

/// Flushes buffered trace lines to disk.
pub fn flush_trace() {
    if let Some(w) = &mut *state().sink.lock().expect("trace sink lock never poisoned") {
        let _ = w.flush();
    }
}

/// Appends one `{"t":kind,"seq":N,...fields}` line — no-op when tracing
/// is inactive. Field order is preserved as given.
pub fn trace_event(kind: &str, fields: Vec<(&str, Value)>) {
    if !trace_enabled() {
        return;
    }
    let st = state();
    let seq = st.seq.fetch_add(1, Ordering::Relaxed);
    let mut obj: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 2);
    obj.push(("t".to_string(), Value::Str(kind.to_string())));
    obj.push(("seq".to_string(), Value::Num(seq as f64)));
    obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    let line = Value::Obj(obj).render_compact();
    if let Some(w) = &mut *st.sink.lock().expect("trace sink lock never poisoned") {
        let _ = writeln!(w, "{line}");
        let _ = w.flush(); // one line per event; crash-safe and cheap at trace rates
    }
}

pub(crate) fn span_event(name: &str, ms: f64) {
    trace_event("span", vec![("name", Value::Str(name.to_string())), ("ms", Value::Num(ms))]);
}

pub(crate) fn log_event(target: &str, level: Level, msg: &str) {
    trace_event(
        "log",
        vec![
            ("level", Value::Str(level.name().to_string())),
            ("target", Value::Str(target.to_string())),
            ("msg", Value::Str(msg.to_string())),
        ],
    );
}
