//! Validates a `COMDML_TRACE` JSONL file against the trace schema.
//!
//! ```sh
//! COMDML_TRACE=trace.jsonl cargo run --release --bin exp_sweep -- ci/specs/smoke.json
//! cargo run --release --bin trace_check -- trace.jsonl
//! ```
//!
//! Every line must parse as a JSON object carrying the envelope — a
//! string `t` (event kind) and a non-negative integer `seq` — and the
//! kinds this build knows must carry their documented fields:
//!
//! * `span`  — `name` (string), `ms` (number ≥ 0)
//! * `log`   — `level` (error|warn|info|debug), `target`, `msg` (strings)
//! * `round` — `round` (integer), `round_s` (number)
//! * `job`   — `scenario`, `method` (strings), `seed` (integer)
//!
//! Unknown kinds pass on the envelope alone (the trace schema is
//! append-only, like the wire protocol). Exits non-zero naming the first
//! offending line.

use std::process::ExitCode;

use comdml_obs::Value;

fn check_line(line: &str) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| format!("not JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("not a JSON object".into());
    }
    let kind = v.get("t").and_then(Value::as_str).ok_or("missing string field \"t\"")?;
    v.get("seq").and_then(Value::as_u64).ok_or("missing non-negative integer \"seq\"")?;
    let need_str = |k: &str| {
        v.get(k).and_then(Value::as_str).map(|_| ()).ok_or(format!("{kind}: missing string {k:?}"))
    };
    let need_num = |k: &str| {
        v.get(k).and_then(Value::as_f64).map(|_| ()).ok_or(format!("{kind}: missing number {k:?}"))
    };
    match kind {
        "span" => {
            need_str("name")?;
            let ms = v.get("ms").and_then(Value::as_f64).ok_or("span: missing number \"ms\"")?;
            if ms.is_nan() || ms < 0.0 {
                return Err(format!("span: negative or NaN ms {ms}"));
            }
        }
        "log" => {
            let level =
                v.get("level").and_then(Value::as_str).ok_or("log: missing string \"level\"")?;
            if !matches!(level, "error" | "warn" | "info" | "debug") {
                return Err(format!("log: unknown level {level:?}"));
            }
            need_str("target")?;
            need_str("msg")?;
        }
        "round" => {
            v.get("round").and_then(Value::as_u64).ok_or("round: missing integer \"round\"")?;
            need_num("round_s")?;
        }
        "job" => {
            need_str("scenario")?;
            need_str("method")?;
            v.get("seed").and_then(Value::as_u64).ok_or("job: missing integer \"seed\"")?;
        }
        _ => {} // append-only schema: unknown kinds pass on the envelope
    }
    Ok(())
}

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or("usage: trace_check <TRACE_*.jsonl>")?;
    if args.next().is_some() {
        return Err("usage: trace_check <TRACE_*.jsonl>".into());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        n += 1;
    }
    if n == 0 {
        return Err(format!("{path}: no trace lines (was tracing actually enabled?)"));
    }
    Ok(format!("ok: {n} trace lines in {path}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
