//! The process-wide [`MetricsRegistry`]: counters, gauges and fixed-bucket
//! latency histograms with p50/p90/p99.
//!
//! The registry itself always works (tests and the farm's worker telemetry
//! use [`Histogram`] directly); the *gated* free functions
//! ([`counter_add`], [`gauge_set`], [`gauge_max`], [`observe_ms`]) are the
//! ones instrumented code calls — they compile down to one relaxed atomic
//! load and return immediately when observability is disabled, so the
//! simulation hot path pays nothing measurable.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets. Bucket `i` covers values in
/// `(BASE·2^(i-1), BASE·2^i]` milliseconds, so 64 power-of-two buckets
/// span 1 µs to ~580 years with 2× resolution.
pub const HIST_BUCKETS: usize = 64;
const HIST_BASE_MS: f64 = 1e-3;

/// A fixed-bucket histogram over non-negative `f64` samples
/// (conventionally milliseconds). Quantiles interpolate to the bucket's
/// upper bound, clamped to the observed `[min, max]` — exact for
/// single-sample histograms, within 2× for everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        // NaN and anything at or under the base land in bucket 0.
        if v.is_nan() || v <= HIST_BASE_MS {
            return 0;
        }
        let i = (v / HIST_BASE_MS).log2().ceil() as i64;
        i.clamp(0, (HIST_BUCKETS - 1) as i64) as usize
    }

    fn bucket_upper(i: usize) -> f64 {
        HIST_BASE_MS * 2f64.powi(i as i32)
    }

    /// Records one sample. Non-finite samples are dropped.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The `q`-quantile estimate (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                if i + 1 == HIST_BUCKETS {
                    // Overflow bucket: its nominal bound may sit below the
                    // real samples, so report the observed maximum.
                    return self.max;
                }
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Condenses the histogram into its summary statistics.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// Summary statistics of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th percentile estimate.
    pub p90: f64,
    /// 99th percentile estimate.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The process-wide registry behind [`metrics`]. Name-keyed counters,
/// gauges and histograms behind one mutex — instrumentation sites are
/// per-round / per-job / per-slice, never per-event, so contention is nil.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("metrics lock never poisoned")
    }

    /// Adds `delta` to the named counter (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Raises the named gauge to `v` if `v` is larger (peak tracking).
    pub fn gauge_max(&self, name: &str, v: f64) {
        let mut inner = self.lock();
        let g = inner.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if v > *g {
            *g = v;
        }
    }

    /// Records a sample into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        self.lock().histograms.entry(name.to_string()).or_default().record(v);
    }

    /// The named counter's value (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// The named histogram's summary.
    pub fn histogram(&self, name: &str) -> Option<HistSummary> {
        self.lock().histograms.get(name).map(Histogram::summary)
    }

    /// A point-in-time copy of everything, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.summary())).collect(),
        }
    }

    /// Clears every counter, gauge and histogram (per-mode deltas in the
    /// bench bins reset between configurations).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` histograms, sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Total milliseconds per phase: every histogram named `phase.<p>`
    /// (what [`crate::phase`] spans record into), as `(<p>, sum_ms)` —
    /// the rows `BenchEntry::phases` carries.
    pub fn phase_totals(&self) -> Vec<(String, f64)> {
        self.histograms
            .iter()
            .filter_map(|(name, h)| name.strip_prefix("phase.").map(|p| (p.to_string(), h.sum)))
            .collect()
    }
}

/// The process-wide registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Adds to a counter — no-op unless observability is enabled.
pub fn counter_add(name: &str, delta: u64) {
    if crate::metrics_enabled() {
        metrics().counter_add(name, delta);
    }
}

/// Sets a gauge — no-op unless observability is enabled.
pub fn gauge_set(name: &str, v: f64) {
    if crate::metrics_enabled() {
        metrics().gauge_set(name, v);
    }
}

/// Raises a gauge to a new peak — no-op unless observability is enabled.
pub fn gauge_max(name: &str, v: f64) {
    if crate::metrics_enabled() {
        metrics().gauge_max(name, v);
    }
}

/// Records a histogram sample — no-op unless observability is enabled.
pub fn observe_ms(name: &str, ms: f64) {
    if crate::metrics_enabled() {
        metrics().observe(name, ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(42.0);
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p90(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42.0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((1.0..=1000.0).contains(&p50));
        assert!((1.0..=1000.0).contains(&p99));
        // 2x bucket resolution: p50 of uniform 1..=1000 is within [500, 1000].
        assert!(p50 >= 500.0, "{p50}");
        assert!(p90 >= 900.0, "{p90}");
    }

    #[test]
    fn histogram_handles_empty_tiny_and_huge() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.summary().min, 0.0);
        let mut h = Histogram::new();
        h.record(0.0); // below the first bucket bound
        h.record(1e30); // beyond the last
        h.record(f64::NAN); // dropped
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), 1e30, "clamped to the observed max");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let r = MetricsRegistry::default();
        r.counter_add("jobs", 2);
        r.counter_add("jobs", 3);
        assert_eq!(r.counter_value("jobs"), 5);
        assert_eq!(r.counter_value("never"), 0);
        r.gauge_set("depth", 7.0);
        r.gauge_max("depth", 3.0); // lower: ignored
        r.gauge_max("depth", 11.0);
        assert_eq!(r.gauge_value("depth"), Some(11.0));
        r.observe("lat", 5.0);
        r.observe("lat", 15.0);
        let s = r.histogram("lat").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 20.0);
        r.reset();
        assert_eq!(r.counter_value("jobs"), 0);
        assert!(r.histogram("lat").is_none());
    }

    #[test]
    fn snapshot_phase_totals_strip_the_prefix() {
        let r = MetricsRegistry::default();
        r.observe("phase.pairing", 2.0);
        r.observe("phase.pairing", 3.0);
        r.observe("phase.round", 10.0);
        r.observe("job.run", 99.0); // not a phase
        let totals = r.snapshot().phase_totals();
        assert_eq!(totals, vec![("pairing".to_string(), 5.0), ("round".to_string(), 10.0)]);
    }
}
