//! Lightweight RAII phase timers.
//!
//! [`phase("fleet.pairing")`](phase) returns a guard; when it drops, the
//! elapsed milliseconds land in the `phase.fleet.pairing` histogram and —
//! when the trace sink is active — a `{"t":"span",...}` JSONL event. When
//! observability is disabled the guard is empty and **no `Instant::now`
//! runs**: the whole call is one relaxed atomic load, which is what lets
//! the simulation keep spans on its round path for free.

use std::time::Instant;

/// An in-flight phase measurement; drop it to record.
#[derive(Debug)]
#[must_use = "a phase timer records on drop — bind it (`let _p = phase(..)`)"]
pub struct PhaseTimer {
    inner: Option<(&'static str, Instant)>,
}

impl PhaseTimer {
    /// Elapsed milliseconds so far; `None` when observability is off.
    pub fn elapsed_ms(&self) -> Option<f64> {
        self.inner.as_ref().map(|(_, start)| start.elapsed().as_secs_f64() * 1e3)
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            if crate::metrics_enabled() {
                crate::metrics().observe(&format!("phase.{name}"), ms);
            }
            crate::trace::span_event(name, ms);
        }
    }
}

/// Starts timing a named phase. A no-op (no clock read) unless metrics or
/// tracing are enabled.
pub fn phase(name: &'static str) -> PhaseTimer {
    if crate::metrics_enabled() || crate::trace_enabled() {
        PhaseTimer { inner: Some((name, Instant::now())) }
    } else {
        PhaseTimer { inner: None }
    }
}
