//! Dependency-free observability for the `comdml-rs` workspace: leveled
//! structured logging, a process-wide metrics registry, RAII phase spans
//! and a JSONL trace sink.
//!
//! ComDML's whole argument is about *where time goes in a round* —
//! straggler wait, offload transfer, helper compute — so this crate gives
//! every layer a shared way to attribute it:
//!
//! * **Logging** — [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros behind
//!   the `COMDML_LOG` env filter (default `warn`, per-target overrides:
//!   `COMDML_LOG=warn,farm=debug`). See [`set_log_filter`].
//! * **Metrics** — [`metrics()`](metrics) is a process-wide
//!   [`MetricsRegistry`] of counters, gauges and fixed-bucket
//!   [`Histogram`]s with p50/p90/p99. The gated helpers ([`counter_add`],
//!   [`gauge_set`], [`gauge_max`], [`observe_ms`]) no-op unless enabled.
//! * **Spans** — [`phase("fleet.pairing")`](phase) times a scope into the
//!   `phase.*` histogram namespace; [`MetricsSnapshot::phase_totals`]
//!   turns a snapshot into the per-phase rows `BenchEntry` carries.
//! * **Tracing** — `COMDML_TRACE=<path>` (or [`set_trace_path`]) streams
//!   every span, log line and structured event as one JSON object per
//!   line; the `trace_check` bin validates a file against the schema.
//!
//! # The zero-overhead / zero-perturbation contract
//!
//! Disabled (the default), every instrumentation site reduces to one
//! relaxed atomic load — **no `Instant::now` runs on any hot path**, so
//! `scalability_10k` wall time is indistinguishable from an
//! uninstrumented build. Enabled, observation never feeds back into the
//! run: no RNG stream, event ordering or simulation value depends on it,
//! so fleet digests and sweep artifacts stay **byte-identical** either
//! way (pinned by `crates/exp/tests/obs.rs` and the CI `obs-smoke` diff).
//!
//! This crate sits at the bottom of the workspace dependency graph and
//! depends on nothing, so any crate may instrument freely. It also owns
//! the workspace's dependency-free JSON [`Value`] model (re-exported by
//! `comdml-bench` for compatibility).
//!
//! # Example
//!
//! ```
//! use comdml_obs as obs;
//!
//! obs::set_metrics_enabled(true);
//! {
//!     let _timer = obs::phase("example.work");
//!     obs::counter_add("example.items", 3);
//! } // timer drop records phase.example.work
//! let snap = obs::metrics().snapshot();
//! assert_eq!(snap.counters.iter().find(|(k, _)| k == "example.items").unwrap().1, 3);
//! assert_eq!(snap.phase_totals()[0].0, "example.work");
//! obs::set_metrics_enabled(false);
//! obs::metrics().reset();
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

pub mod json;
mod log;
mod metrics;
mod span;
mod trace;

pub use json::Value;
#[doc(hidden)]
pub use log::{emit as log_emit, enabled as log_enabled};
pub use log::{set_log_filter, Level};
pub use metrics::{
    counter_add, gauge_max, gauge_set, metrics, observe_ms, HistSummary, Histogram,
    MetricsRegistry, MetricsSnapshot, HIST_BUCKETS,
};
pub use span::{phase, PhaseTimer};
pub use trace::{disable_trace, flush_trace, set_trace_path, trace_enabled, trace_event};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Applies the env configuration exactly once (lazily, from the first
/// observability call).
pub(crate) fn ensure_init() {
    ENV_INIT.call_once(|| {
        let cfg = ObsConfig::from_env();
        if let Err(e) = cfg.apply_inner() {
            eprintln!("comdml-obs: COMDML_TRACE sink unusable: {e}");
        }
    });
}

/// Whether metrics/span collection is on. One relaxed atomic load — the
/// check every gated helper performs.
pub fn metrics_enabled() -> bool {
    ensure_init();
    METRICS_ON.load(Ordering::Relaxed)
}

/// Turns metrics/span collection on or off programmatically (bench bins
/// and tests; `COMDML_METRICS=1` / `COMDML_TRACE=<path>` do it via env).
pub fn set_metrics_enabled(on: bool) {
    ensure_init();
    METRICS_ON.store(on, Ordering::Relaxed);
}

/// The crate's whole configuration surface, as read from the environment
/// or built programmatically and [`apply`](ObsConfig::apply)-ed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Enable the metrics registry and phase spans (`COMDML_METRICS=1`).
    pub metrics: bool,
    /// Log filter spec (`COMDML_LOG`, e.g. `"info"` or `"warn,farm=debug"`).
    pub log_filter: Option<String>,
    /// JSONL trace sink path (`COMDML_TRACE`); implies `metrics`.
    pub trace_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Reads `COMDML_METRICS`, `COMDML_LOG` and `COMDML_TRACE`.
    pub fn from_env() -> Self {
        let metrics = std::env::var("COMDML_METRICS")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false);
        let log_filter = std::env::var("COMDML_LOG").ok().filter(|s| !s.is_empty());
        let trace_path =
            std::env::var("COMDML_TRACE").ok().filter(|s| !s.is_empty()).map(PathBuf::from);
        Self { metrics, log_filter, trace_path }
    }

    /// Applies the configuration to the process-wide state.
    ///
    /// # Errors
    ///
    /// Propagates a trace-sink creation failure (logging and metrics are
    /// still applied).
    pub fn apply(&self) -> std::io::Result<()> {
        ensure_init();
        self.apply_inner()
    }

    fn apply_inner(&self) -> std::io::Result<()> {
        if let Some(spec) = &self.log_filter {
            set_log_filter(spec);
        }
        if self.metrics || self.trace_path.is_some() {
            METRICS_ON.store(true, Ordering::Relaxed);
        }
        if let Some(path) = &self.trace_path {
            trace::set_trace_path_inner(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All global-state assertions live in this one test so the flag,
    /// registry and sink are never toggled concurrently by siblings.
    #[test]
    fn global_pipeline_gates_records_and_traces() {
        // Disabled: gated helpers no-op and phase() reads no clock.
        set_metrics_enabled(false);
        counter_add("pipeline.counter", 1);
        observe_ms("pipeline.hist", 1.0);
        assert!(phase("pipeline.phase").elapsed_ms().is_none(), "no clock when disabled");
        assert_eq!(metrics().counter_value("pipeline.counter"), 0);
        assert!(metrics().histogram("pipeline.hist").is_none());

        // Enabled via trace sink: spans hit the registry and the file.
        let path = std::env::temp_dir().join("comdml_obs_lib_test.jsonl");
        set_trace_path(&path).unwrap();
        assert!(metrics_enabled() && trace_enabled());
        counter_add("pipeline.counter", 2);
        {
            let t = phase("pipeline.phase");
            assert!(t.elapsed_ms().is_some());
        }
        trace_event("custom", vec![("k", Value::Num(1.5))]);
        crate::warn!("pipeline", "warned {}", 7);
        disable_trace();
        set_metrics_enabled(false);

        assert_eq!(metrics().counter_value("pipeline.counter"), 2);
        let snap = metrics().snapshot();
        let phases = snap.phase_totals();
        assert!(phases.iter().any(|(n, ms)| n == "pipeline.phase" && *ms >= 0.0), "{phases:?}");

        // Every line parses, carries the envelope, and seq increments.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut kinds = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let v = Value::parse(line).unwrap();
            assert_eq!(v.get("seq").and_then(Value::as_u64), Some(i as u64));
            kinds.push(v.get("t").and_then(Value::as_str).unwrap().to_string());
        }
        assert_eq!(kinds, vec!["span", "custom", "log"]);
        let last = Value::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(last.get("msg").and_then(Value::as_str), Some("warned 7"));

        metrics().reset();
        let _ = std::fs::remove_file(&path);
    }
}
