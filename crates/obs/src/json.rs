//! The workspace's dependency-free JSON value model ([`Value`]).
//!
//! A recursive-descent parser and deterministic writer for full JSON
//! documents (objects keep insertion order), used by the `comdml-exp`
//! scenario-spec files, sweep reports, sharded *partial* reports, the
//! `BENCH_*.json` records, and this crate's own JSONL trace sink. Numbers
//! render in Rust's shortest round-trip representation, so
//! `parse ∘ render` preserves every `f64` bit-exactly — the property that
//! lets `sweep_merge` reassemble partial reports into a document
//! byte-identical to a single-process run.
//!
//! This model lives in `comdml-obs` (the bottom of the dependency graph)
//! so every crate — including the trace sink below the bench layer — can
//! share one writer; `comdml-bench` re-exports it, so
//! `comdml_bench::Value` remains a valid path.

/// A JSON document: the dependency-free value model behind the scenario
/// spec files. Objects preserve insertion order, so `parse` → `render` is
/// deterministic and round-trips byte for byte (modulo whitespace).
///
/// # Example
///
/// ```
/// use comdml_obs::Value;
///
/// let v = Value::parse(r#"{"name": "smoke", "seeds": [1, 2, 3]}"#).unwrap();
/// assert_eq!(v.get("name").and_then(Value::as_str), Some("smoke"));
/// assert_eq!(v.get("seeds").and_then(Value::as_array).map(|a| a.len()), Some(3));
/// let again = Value::parse(&v.render()).unwrap();
/// assert_eq!(again, v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document (objects, arrays, strings with the common
    /// escapes, numbers, booleans, null). Trailing content after the first
    /// value is an error.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and description of the first syntax error.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, `\n`
    /// newlines) — deterministic, so spec files and sweep reports are
    /// byte-comparable across runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on a single line with no whitespace — the JSONL
    /// form the trace sink emits, one document per line. Numbers use the
    /// same shortest round-trip printing as [`Value::render`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&render_number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&render_number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as usize, if this is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Renders an `f64` so that integers look like integers and everything
/// round-trips through Rust's shortest-representation float printing.
fn render_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    // Work on char boundaries: collect raw bytes then decode escapes.
    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| format!("invalid utf-8: {e}"))?;
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((j, 'u')) => {
                    let hex = s.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                    // Consume the four hex digits.
                    for _ in 0..4 {
                        chars.next();
                    }
                    if (0xd800..=0xdbff).contains(&code) {
                        // High surrogate: a \uXXXX low surrogate must
                        // follow; the pair decodes to one supplementary
                        // character (JSON strings are UTF-16-escaped).
                        if s.get(j + 5..j + 7) != Some("\\u") {
                            return Err("unpaired high surrogate in \\u escape".into());
                        }
                        let lo_hex = s.get(j + 7..j + 11).ok_or("truncated \\u escape")?;
                        let lo =
                            u32::from_str_radix(lo_hex, 16).map_err(|_| "invalid \\u escape")?;
                        if !(0xdc00..=0xdfff).contains(&lo) {
                            return Err("unpaired high surrogate in \\u escape".into());
                        }
                        let combined = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                        out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                        // Consume the `\uXXXX` of the low surrogate.
                        for _ in 0..6 {
                            chars.next();
                        }
                    } else if (0xdc00..=0xdfff).contains(&code) {
                        return Err("unpaired low surrogate in \\u escape".into());
                    } else {
                        out.push(char::from_u32(code).expect("non-surrogate BMP code point"));
                    }
                }
                other => return Err(format!("unsupported escape {:?}", other.map(|(_, c)| c))),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    loop {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {}
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            Some(b'"') => {}
            _ => return Err(format!("expected key or `}}` at byte {pos}", pos = *pos)),
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parses_nested_documents() {
        let v = Value::parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y\\z\nw"}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x\"y\\z\nw"));
    }

    #[test]
    fn value_render_round_trips() {
        let src = r#"{"name":"sweep","n":[0,1,{"k":[]},{}],"f":0.125,"neg":-7,"u":"é"}"#;
        let v = Value::parse(src).unwrap();
        let rendered = v.render();
        let again = Value::parse(&rendered).unwrap();
        assert_eq!(again, v);
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(v.render(), rendered);
    }

    #[test]
    fn compact_render_is_single_line_and_round_trips() {
        let src = r#"{"t":"span","name":"fleet.pairing","ms":1.25,"tags":["a","b"],"n":null}"#;
        let v = Value::parse(src).unwrap();
        let compact = v.render_compact();
        assert_eq!(compact, src, "compact rendering matches minified JSON");
        assert!(!compact.contains('\n'));
        assert_eq!(Value::parse(&compact).unwrap(), v);
    }

    #[test]
    fn value_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "{\"k\" 1}", "12 34", "{'k': 1}", ""] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn value_decodes_unicode_escapes_and_surrogate_pairs() {
        // Raw UTF-8 passes through; \u BMP escapes decode; a surrogate
        // pair (ASCII-only writers escape non-BMP this way) combines into
        // one character.
        assert_eq!(Value::parse(r#""café 🚀""#).unwrap().as_str(), Some("café 🚀"));
        assert_eq!(Value::parse("\"\\u00e9 x\"").unwrap().as_str(), Some("é x"));
        assert_eq!(Value::parse("\"\\ud83d\\ude80\"").unwrap().as_str(), Some("🚀"));
        for bad in [r#""\ud83d""#, r#""\ud83d x""#, r#""\ud83dA""#, r#""\ude80""#] {
            assert!(Value::parse(bad).is_err(), "{bad} must reject unpaired surrogates");
        }
    }

    #[test]
    fn value_integer_rendering_is_exact() {
        let v = Value::Arr(vec![Value::Num(1e15), Value::Num(0.1), Value::Num(-0.0)]);
        let s = v.render();
        assert!(s.contains("1000000000000000"), "{s}");
        assert!(s.contains("0.1"), "{s}");
        assert_eq!(Value::parse(&s).unwrap(), v);
    }

    #[test]
    fn value_float_round_trip_is_bit_exact() {
        // The shard-merge byte-identity contract: any finite f64 that a
        // report can carry must survive render ∘ parse with the same bits.
        // Shortest round-trip float printing guarantees it; pin a spread
        // of awkward values (non-terminating binary fractions, extremes of
        // the integer-rendered range, subnormals, huge magnitudes).
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            2.0f64.powi(-1074), // smallest subnormal
            f64::MIN_POSITIVE,
            1e300,
            -123456.78901234567,
            8.9e15, // just inside the integer-rendered range
            9.1e15, // just outside it
            0.0,
            -0.0,
        ];
        for &v in &values {
            let rendered = Value::Num(v).render();
            let back = Value::parse(&rendered).unwrap();
            let b = back.as_f64().unwrap();
            assert!(
                b == v || (b == 0.0 && v == 0.0),
                "{v:?} rendered as {rendered:?} parsed back as {b:?}"
            );
            // And a second render is byte-identical to the first.
            assert_eq!(back.render(), rendered);
        }
    }

    #[test]
    fn value_as_usize_guards_fractions_and_sign() {
        assert_eq!(Value::Num(5.0).as_usize(), Some(5));
        assert_eq!(Value::Num(5.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("5".into()).as_usize(), None);
    }
}
