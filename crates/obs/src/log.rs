//! Leveled structured logging behind the `COMDML_LOG` env filter.
//!
//! Call sites use the [`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info) and [`debug!`](crate::debug) macros with a
//! *target* (conventionally the crate or subsystem name) and a format
//! string. The filter defaults to `warn`, so quiet CI runs stay quiet;
//! `COMDML_LOG=debug` opens everything, and per-target overrides compose
//! as `COMDML_LOG=warn,farm=debug,comdml-net=off` (longest matching
//! target prefix wins). Lines go to stderr as `[level] target: message`
//! and, when the trace sink is active, also to the JSONL trace as
//! `{"t":"log",...}` events.

use std::sync::RwLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A fatal or operation-ending failure.
    Error,
    /// Something unexpected the run survives (default filter threshold).
    Warn,
    /// Progress and lifecycle events.
    Info,
    /// Per-message / per-slice detail.
    Debug,
}

impl Level {
    /// The lowercase name used in output and filter specs.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Numeric severity rank: `off` = 0, `error` = 1 … `debug` = 4.
    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }
}

/// `off`/`error`/`warn`/`info`/`debug` → threshold rank.
fn threshold_of(s: &str) -> Option<u8> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Some(0),
        "error" => Some(1),
        "warn" | "warning" => Some(2),
        "info" => Some(3),
        "debug" | "trace" => Some(4),
        _ => None,
    }
}

#[derive(Debug)]
struct Filter {
    default: u8,
    /// `(target prefix, threshold)`, checked longest-prefix-first.
    overrides: Vec<(String, u8)>,
}

impl Filter {
    fn parse(spec: &str) -> Self {
        let mut default = DEFAULT_THRESHOLD;
        let mut overrides: Vec<(String, u8)> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(t) = threshold_of(level.trim()) {
                        overrides.push((target.trim().to_string(), t));
                    }
                }
                None => {
                    if let Some(t) = threshold_of(part) {
                        default = t;
                    }
                }
            }
        }
        // Longest prefix first, so `farm.reaper=debug` beats `farm=warn`.
        overrides.sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
        Self { default, overrides }
    }

    fn threshold(&self, target: &str) -> u8 {
        self.overrides
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map_or(self.default, |&(_, t)| t)
    }
}

/// The default threshold when `COMDML_LOG` is unset: `warn`.
const DEFAULT_THRESHOLD: u8 = 2;

static FILTER: RwLock<Option<Filter>> = RwLock::new(None);

/// Replaces the active log filter with a parsed `COMDML_LOG`-style spec
/// (e.g. `"info"` or `"warn,farm=debug"`). Programmatic override for bins
/// and tests; the env var is applied automatically on first use.
pub fn set_log_filter(spec: &str) {
    *FILTER.write().expect("log filter lock never poisoned") = Some(Filter::parse(spec));
}

/// Whether a `(target, level)` pair passes the active filter.
pub fn enabled(target: &str, level: Level) -> bool {
    crate::ensure_init();
    let guard = FILTER.read().expect("log filter lock never poisoned");
    let threshold = guard.as_ref().map_or(DEFAULT_THRESHOLD, |f| f.threshold(target));
    level.rank() <= threshold
}

/// Writes one already-filtered log line (macro support; call the macros,
/// not this).
#[doc(hidden)]
pub fn emit(target: &str, level: Level, msg: &str) {
    eprintln!("[{}] {target}: {msg}", level.name());
    crate::trace::log_event(target, level, msg);
}

/// Logs at error level: `comdml_obs::error!("farm", "bind failed: {e}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($target, $crate::Level::Error) {
            $crate::log_emit($target, $crate::Level::Error, &format!($($arg)+));
        }
    };
}

/// Logs at warn level (the default `COMDML_LOG` threshold).
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($target, $crate::Level::Warn) {
            $crate::log_emit($target, $crate::Level::Warn, &format!($($arg)+));
        }
    };
}

/// Logs at info level (hidden unless `COMDML_LOG=info` or lower).
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($target, $crate::Level::Info) {
            $crate::log_emit($target, $crate::Level::Info, &format!($($arg)+));
        }
    };
}

/// Logs at debug level.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log_enabled($target, $crate::Level::Debug) {
            $crate::log_emit($target, $crate::Level::Debug, &format!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let f = Filter::parse("");
        assert_eq!(f.threshold("anything"), 2);
    }

    #[test]
    fn filter_spec_parses_default_and_overrides() {
        let f = Filter::parse("info,farm=debug,comdml-net=off");
        assert_eq!(f.threshold("core"), 3);
        assert_eq!(f.threshold("farm"), 4);
        assert_eq!(f.threshold("farm.reaper"), 4, "prefix match");
        assert_eq!(f.threshold("comdml-net"), 0);
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("warn,farm=error,farm.reaper=debug");
        assert_eq!(f.threshold("farm"), 1);
        assert_eq!(f.threshold("farm.reaper"), 4);
    }

    #[test]
    fn garbage_levels_are_ignored() {
        let f = Filter::parse("loud,farm=shouty");
        assert_eq!(f.threshold("farm"), 2, "falls back to the default");
    }

    #[test]
    fn rank_ordering_matches_severity() {
        assert!(Level::Error.rank() < Level::Warn.rank());
        assert!(Level::Warn.rank() < Level::Info.rank());
        assert!(Level::Info.rank() < Level::Debug.rank());
    }
}
