//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! The CI perf-regression gate compares a freshly produced record against a
//! baseline committed under `ci/bench-baselines/`, so the format must be
//! writable *and* parseable without a JSON dependency (the build runs
//! offline). The schema is deliberately flat: one record per benchmark
//! binary, one entry per measured configuration, numbers only — plus an
//! optional nested `phases` object per entry attributing the wall time to
//! the `comdml-obs` phase spans that produced it, so `bench_gate` can say
//! *which phase* regressed rather than just that the binary did.
//!
//! The generic JSON value model this format parses with — [`Value`] — now
//! lives in [`comdml_obs::json`] (the bottom of the dependency graph, so
//! the trace sink can share the same exact-float writer); it is
//! re-exported here, so `comdml_bench::Value` remains a valid path.
//!
//! # Example
//!
//! ```
//! use comdml_bench::{BenchEntry, BenchRecord};
//!
//! let mut rec = BenchRecord::new("fleet_churn", 10_000, 1_000);
//! rec.push(BenchEntry {
//!     mode: "semi_sync".into(),
//!     wall_ms: 1234.5,
//!     events_processed: 42,
//!     peak_agents: 10_100,
//!     sim_total_s: 9.9,
//!     rounds: 1_000,
//!     phases: vec![("fleet.pairing".into(), 321.0), ("fleet.round".into(), 900.5)],
//! });
//! let json = rec.to_json();
//! let back = BenchRecord::parse(&json).unwrap();
//! assert_eq!(back, rec);
//! ```

use std::fs;
use std::path::{Path, PathBuf};

pub use comdml_obs::Value;

/// One measured configuration (typically an aggregation mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Configuration label (e.g. `synchronous`).
    pub mode: String,
    /// Wall-clock milliseconds the configuration took.
    pub wall_ms: f64,
    /// Simulation events executed.
    pub events_processed: u64,
    /// Largest concurrent fleet membership observed.
    pub peak_agents: usize,
    /// Total simulated seconds produced.
    pub sim_total_s: f64,
    /// Rounds simulated in this configuration.
    pub rounds: usize,
    /// Per-phase wall milliseconds (`MetricsSnapshot::phase_totals`),
    /// attributing `wall_ms` to named spans. Empty when the producing bin
    /// ran without observability — the field is then omitted from the
    /// JSON, so pre-phase baselines parse and render unchanged.
    pub phases: Vec<(String, f64)>,
}

/// A benchmark run: identity plus one [`BenchEntry`] per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (the `BENCH_<name>.json` file stem suffix).
    pub bench: String,
    /// Agents at fleet construction.
    pub agents: usize,
    /// Nominal rounds per configuration.
    pub rounds: usize,
    /// Measured configurations.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Starts an empty record.
    pub fn new(bench: &str, agents: usize, rounds: usize) -> Self {
        Self { bench: bench.to_string(), agents, rounds, entries: Vec::new() }
    }

    /// Appends one configuration's measurements.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Renders the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"agents\": {},\n", self.agents));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"mode\": \"{}\", ", escape(&e.mode)));
            out.push_str(&format!("\"wall_ms\": {:.3}, ", e.wall_ms));
            out.push_str(&format!("\"events_processed\": {}, ", e.events_processed));
            out.push_str(&format!("\"peak_agents\": {}, ", e.peak_agents));
            out.push_str(&format!("\"sim_total_s\": {:.3}, ", e.sim_total_s));
            out.push_str(&format!("\"rounds\": {}", e.rounds));
            if !e.phases.is_empty() {
                out.push_str(", \"phases\": {");
                for (j, (name, ms)) in e.phases.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {ms:.3}", escape(name)));
                }
                out.push('}');
            }
            out.push_str(if i + 1 < self.entries.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a record previously produced by [`BenchRecord::to_json`]
    /// (any JSON formatting of the same document is accepted — the parser
    /// is the full [`Value`] model, which is what lets entries nest a
    /// `phases` object). Entries without `phases` parse as empty, so
    /// pre-phase baselines stay readable.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = Value::parse(s).map_err(|e| format!("bench record: {e}"))?;
        let bench = v.get("bench").and_then(Value::as_str).ok_or("missing \"bench\"")?.to_string();
        let agents = v.get("agents").and_then(Value::as_usize).ok_or("missing \"agents\"")?;
        let rounds = v.get("rounds").and_then(Value::as_usize).ok_or("missing \"rounds\"")?;
        let entries = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("missing \"entries\"")?
            .iter()
            .map(parse_entry)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { bench, agents, rounds, entries })
    }

    /// Writes `<dir>/BENCH_<bench>.json`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes to the workspace default, `target/experiments/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("target").join("experiments"))
    }
}

fn parse_entry(e: &Value) -> Result<BenchEntry, String> {
    let num =
        |k: &str| e.get(k).and_then(Value::as_f64).ok_or_else(|| format!("entry missing {k:?}"));
    let phases = match e.get("phases") {
        None => Vec::new(),
        Some(p) => p
            .as_object()
            .ok_or("entry \"phases\" must be an object")?
            .iter()
            .map(|(name, ms)| {
                ms.as_f64()
                    .map(|ms| (name.clone(), ms))
                    .ok_or_else(|| format!("phase {name:?} must be a number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(BenchEntry {
        mode: e.get("mode").and_then(Value::as_str).ok_or("entry missing \"mode\"")?.to_string(),
        wall_ms: num("wall_ms")?,
        events_processed: num("events_processed")? as u64,
        peak_agents: num("peak_agents")? as usize,
        sim_total_s: num("sim_total_s")?,
        rounds: num("rounds")? as usize,
        phases,
    })
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord::new("demo", 100, 10);
        r.push(BenchEntry {
            mode: "synchronous".into(),
            wall_ms: 12.5,
            events_processed: 999,
            peak_agents: 105,
            sim_total_s: 345.678,
            rounds: 10,
            phases: Vec::new(),
        });
        r.push(BenchEntry {
            mode: "asynchronous".into(),
            wall_ms: 7.25,
            events_processed: 123,
            peak_agents: 101,
            sim_total_s: 2.0,
            rounds: 10,
            phases: Vec::new(),
        });
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn phases_round_trip_and_stay_out_of_phaseless_output() {
        let mut r = BenchRecord::new("phased", 10, 2);
        r.push(BenchEntry {
            mode: "semi_sync".into(),
            wall_ms: 100.0,
            events_processed: 5,
            peak_agents: 10,
            sim_total_s: 1.5,
            rounds: 2,
            phases: vec![("fleet.pairing".into(), 12.25), ("fleet.round".into(), 80.5)],
        });
        let json = r.to_json();
        assert!(json.contains("\"phases\": {\"fleet.pairing\": 12.250, \"fleet.round\": 80.500}"));
        assert_eq!(BenchRecord::parse(&json).unwrap(), r);
        // Phaseless entries keep the exact pre-phase line format.
        let plain = sample().to_json();
        assert!(!plain.contains("phases"));
    }

    #[test]
    fn parse_tolerates_whitespace_variations() {
        let loose = "{ \"bench\" :\"x\", \"agents\": 5, \"rounds\":2,\n\
                     \"entries\": [ { \"mode\":\"m\", \"wall_ms\": 1.5,\n\
                     \"events_processed\": 7, \"peak_agents\": 5,\n\
                     \"sim_total_s\": 0.25, \"rounds\": 2 } ] }";
        let r = BenchRecord::parse(loose).unwrap();
        assert_eq!(r.bench, "x");
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].events_processed, 7);
        assert_eq!(r.entries[0].wall_ms, 1.5);
        assert!(r.entries[0].phases.is_empty());
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("{\"bench\": \"x\"}").is_err());
    }

    #[test]
    fn writes_to_disk() {
        let r = sample();
        let dir = std::env::temp_dir().join("comdml_bench_json_test");
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(BenchRecord::parse(&content).unwrap(), r);
    }

    #[test]
    fn empty_entries_round_trip() {
        let r = BenchRecord::new("empty", 0, 0);
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn names_with_quotes_and_backslashes_round_trip() {
        let mut r = BenchRecord::new("we\"ird\\name", 1, 1);
        r.push(BenchEntry {
            mode: "mo\"de\\x".into(),
            wall_ms: 1.0,
            events_processed: 1,
            peak_agents: 1,
            sim_total_s: 1.0,
            rounds: 1,
            phases: Vec::new(),
        });
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }
}
