//! Machine-readable benchmark records (`BENCH_*.json`) and a small generic
//! JSON value model ([`Value`]).
//!
//! The CI perf-regression gate compares a freshly produced record against a
//! baseline committed under `ci/bench-baselines/`, so the format must be
//! writable *and* parseable without a JSON dependency (the build runs
//! offline). The schema is deliberately flat: one record per benchmark
//! binary, one entry per measured configuration, numbers only.
//!
//! [`Value`] is the structural companion: a recursive-descent parser and
//! deterministic writer for full JSON documents (objects keep insertion
//! order), used by the `comdml-exp` scenario-spec files, sweep reports and
//! sharded *partial* reports. Numbers render in Rust's shortest
//! round-trip representation, so `parse ∘ render` preserves every `f64`
//! bit-exactly — the property that lets `sweep_merge` reassemble partial
//! reports into a document byte-identical to a single-process run.
//!
//! # Example
//!
//! ```
//! use comdml_bench::{BenchEntry, BenchRecord};
//!
//! let mut rec = BenchRecord::new("fleet_churn", 10_000, 1_000);
//! rec.push(BenchEntry {
//!     mode: "semi_sync".into(),
//!     wall_ms: 1234.5,
//!     events_processed: 42,
//!     peak_agents: 10_100,
//!     sim_total_s: 9.9,
//!     rounds: 1_000,
//! });
//! let json = rec.to_json();
//! let back = BenchRecord::parse(&json).unwrap();
//! assert_eq!(back, rec);
//! ```

use std::fs;
use std::path::{Path, PathBuf};

/// One measured configuration (typically an aggregation mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Configuration label (e.g. `synchronous`).
    pub mode: String,
    /// Wall-clock milliseconds the configuration took.
    pub wall_ms: f64,
    /// Simulation events executed.
    pub events_processed: u64,
    /// Largest concurrent fleet membership observed.
    pub peak_agents: usize,
    /// Total simulated seconds produced.
    pub sim_total_s: f64,
    /// Rounds simulated in this configuration.
    pub rounds: usize,
}

/// A benchmark run: identity plus one [`BenchEntry`] per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (the `BENCH_<name>.json` file stem suffix).
    pub bench: String,
    /// Agents at fleet construction.
    pub agents: usize,
    /// Nominal rounds per configuration.
    pub rounds: usize,
    /// Measured configurations.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Starts an empty record.
    pub fn new(bench: &str, agents: usize, rounds: usize) -> Self {
        Self { bench: bench.to_string(), agents, rounds, entries: Vec::new() }
    }

    /// Appends one configuration's measurements.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Renders the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"agents\": {},\n", self.agents));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"mode\": \"{}\", ", escape(&e.mode)));
            out.push_str(&format!("\"wall_ms\": {:.3}, ", e.wall_ms));
            out.push_str(&format!("\"events_processed\": {}, ", e.events_processed));
            out.push_str(&format!("\"peak_agents\": {}, ", e.peak_agents));
            out.push_str(&format!("\"sim_total_s\": {:.3}, ", e.sim_total_s));
            out.push_str(&format!("\"rounds\": {}", e.rounds));
            out.push_str(if i + 1 < self.entries.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a record previously produced by [`BenchRecord::to_json`].
    ///
    /// The parser is a minimal scanner for this module's own output plus
    /// whitespace variations — not a general JSON parser.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bench = find_string(s, "bench").ok_or("missing \"bench\"")?;
        let agents = find_number(s, "agents").ok_or("missing \"agents\"")? as usize;
        // The top-level "rounds" is the first occurrence; per-entry rounds
        // are parsed inside each braces group below.
        let rounds = find_number(s, "rounds").ok_or("missing \"rounds\"")? as usize;
        let list_start = s.find("\"entries\"").ok_or("missing \"entries\"")?;
        let mut entries = Vec::new();
        let mut rest = &s[list_start..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}').ok_or("unbalanced entry braces")? + open;
            let obj = &rest[open..=close];
            entries.push(BenchEntry {
                mode: find_string(obj, "mode").ok_or("entry missing \"mode\"")?,
                wall_ms: find_number(obj, "wall_ms").ok_or("entry missing \"wall_ms\"")?,
                events_processed: find_number(obj, "events_processed")
                    .ok_or("entry missing \"events_processed\"")?
                    as u64,
                peak_agents: find_number(obj, "peak_agents")
                    .ok_or("entry missing \"peak_agents\"")? as usize,
                sim_total_s: find_number(obj, "sim_total_s")
                    .ok_or("entry missing \"sim_total_s\"")?,
                rounds: find_number(obj, "rounds").ok_or("entry missing \"rounds\"")? as usize,
            });
            rest = &rest[close + 1..];
        }
        Ok(Self { bench, agents, rounds, entries })
    }

    /// Writes `<dir>/BENCH_<bench>.json`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes to the workspace default, `target/experiments/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("target").join("experiments"))
    }
}

/// A JSON document: the dependency-free value model behind the scenario
/// spec files. Objects preserve insertion order, so `parse` → `render` is
/// deterministic and round-trips byte for byte (modulo whitespace).
///
/// # Example
///
/// ```
/// use comdml_bench::Value;
///
/// let v = Value::parse(r#"{"name": "smoke", "seeds": [1, 2, 3]}"#).unwrap();
/// assert_eq!(v.get("name").and_then(Value::as_str), Some("smoke"));
/// assert_eq!(v.get("seeds").and_then(Value::as_array).map(|a| a.len()), Some(3));
/// let again = Value::parse(&v.render()).unwrap();
/// assert_eq!(again, v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document (objects, arrays, strings with the common
    /// escapes, numbers, booleans, null). Trailing content after the first
    /// value is an error.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and description of the first syntax error.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, `\n`
    /// newlines) — deterministic, so spec files and sweep reports are
    /// byte-comparable across runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&render_number(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as usize, if this is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Renders an `f64` so that integers look like integers and everything
/// round-trips through Rust's shortest-representation float printing.
fn render_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    // Work on char boundaries: collect raw bytes then decode escapes.
    let s = std::str::from_utf8(&b[*pos..]).map_err(|e| format!("invalid utf-8: {e}"))?;
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((j, 'u')) => {
                    let hex = s.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                    // Consume the four hex digits.
                    for _ in 0..4 {
                        chars.next();
                    }
                    if (0xd800..=0xdbff).contains(&code) {
                        // High surrogate: a \uXXXX low surrogate must
                        // follow; the pair decodes to one supplementary
                        // character (JSON strings are UTF-16-escaped).
                        if s.get(j + 5..j + 7) != Some("\\u") {
                            return Err("unpaired high surrogate in \\u escape".into());
                        }
                        let lo_hex = s.get(j + 7..j + 11).ok_or("truncated \\u escape")?;
                        let lo =
                            u32::from_str_radix(lo_hex, 16).map_err(|_| "invalid \\u escape")?;
                        if !(0xdc00..=0xdfff).contains(&lo) {
                            return Err("unpaired high surrogate in \\u escape".into());
                        }
                        let combined = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                        out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                        // Consume the `\uXXXX` of the low surrogate.
                        for _ in 0..6 {
                            chars.next();
                        }
                    } else if (0xdc00..=0xdfff).contains(&code) {
                        return Err("unpaired low surrogate in \\u escape".into());
                    } else {
                        out.push(char::from_u32(code).expect("non-surrogate BMP code point"));
                    }
                }
                other => return Err(format!("unsupported escape {:?}", other.map(|(_, c)| c))),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    loop {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {}
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            Some(b'"') => {}
            _ => return Err(format!("expected key or `}}` at byte {pos}", pos = *pos)),
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Finds `"key": "value"` and returns the unescaped value, honouring the
/// backslash escapes [`escape`] emits (`\"` and `\\`).
fn find_string(s: &str, k: &str) -> Option<String> {
    let rest = after_key(s, k)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            other => out.push(other),
        }
    }
    None // unterminated string
}

/// Finds `"key": <number>` and parses the number.
fn find_number(s: &str, k: &str) -> Option<f64> {
    let rest = after_key(s, k)?;
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Returns the slice just past `"key":` and any whitespace.
fn after_key<'a>(s: &'a str, k: &str) -> Option<&'a str> {
    let pat = format!("\"{k}\"");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord::new("demo", 100, 10);
        r.push(BenchEntry {
            mode: "synchronous".into(),
            wall_ms: 12.5,
            events_processed: 999,
            peak_agents: 105,
            sim_total_s: 345.678,
            rounds: 10,
        });
        r.push(BenchEntry {
            mode: "asynchronous".into(),
            wall_ms: 7.25,
            events_processed: 123,
            peak_agents: 101,
            sim_total_s: 2.0,
            rounds: 10,
        });
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn parse_tolerates_whitespace_variations() {
        let loose = "{ \"bench\" :\"x\", \"agents\": 5, \"rounds\":2,\n\
                     \"entries\": [ { \"mode\":\"m\", \"wall_ms\": 1.5,\n\
                     \"events_processed\": 7, \"peak_agents\": 5,\n\
                     \"sim_total_s\": 0.25, \"rounds\": 2 } ] }";
        let r = BenchRecord::parse(loose).unwrap();
        assert_eq!(r.bench, "x");
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].events_processed, 7);
        assert_eq!(r.entries[0].wall_ms, 1.5);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("{\"bench\": \"x\"}").is_err());
    }

    #[test]
    fn writes_to_disk() {
        let r = sample();
        let dir = std::env::temp_dir().join("comdml_bench_json_test");
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(BenchRecord::parse(&content).unwrap(), r);
    }

    #[test]
    fn empty_entries_round_trip() {
        let r = BenchRecord::new("empty", 0, 0);
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn value_parses_nested_documents() {
        let v = Value::parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y\\z\nw"}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("x\"y\\z\nw"));
    }

    #[test]
    fn value_render_round_trips() {
        let src = r#"{"name":"sweep","n":[0,1,{"k":[]},{}],"f":0.125,"neg":-7,"u":"é"}"#;
        let v = Value::parse(src).unwrap();
        let rendered = v.render();
        let again = Value::parse(&rendered).unwrap();
        assert_eq!(again, v);
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(v.render(), rendered);
    }

    #[test]
    fn value_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "{\"k\" 1}", "12 34", "{'k': 1}", ""] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn value_decodes_unicode_escapes_and_surrogate_pairs() {
        // Raw UTF-8 passes through; \u BMP escapes decode; a surrogate
        // pair (ASCII-only writers escape non-BMP this way) combines into
        // one character.
        assert_eq!(Value::parse(r#""café 🚀""#).unwrap().as_str(), Some("café 🚀"));
        assert_eq!(Value::parse("\"\\u00e9 x\"").unwrap().as_str(), Some("é x"));
        assert_eq!(Value::parse("\"\\ud83d\\ude80\"").unwrap().as_str(), Some("🚀"));
        for bad in [r#""\ud83d""#, r#""\ud83d x""#, r#""\ud83dA""#, r#""\ude80""#] {
            assert!(Value::parse(bad).is_err(), "{bad} must reject unpaired surrogates");
        }
    }

    #[test]
    fn value_integer_rendering_is_exact() {
        let v = Value::Arr(vec![Value::Num(1e15), Value::Num(0.1), Value::Num(-0.0)]);
        let s = v.render();
        assert!(s.contains("1000000000000000"), "{s}");
        assert!(s.contains("0.1"), "{s}");
        assert_eq!(Value::parse(&s).unwrap(), v);
    }

    #[test]
    fn value_float_round_trip_is_bit_exact() {
        // The shard-merge byte-identity contract: any finite f64 that a
        // report can carry must survive render ∘ parse with the same bits.
        // Shortest round-trip float printing guarantees it; pin a spread
        // of awkward values (non-terminating binary fractions, extremes of
        // the integer-rendered range, subnormals, huge magnitudes).
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            2.0f64.powi(-1074), // smallest subnormal
            f64::MIN_POSITIVE,
            1e300,
            -123456.78901234567,
            8.9e15, // just inside the integer-rendered range
            9.1e15, // just outside it
            0.0,
            -0.0,
        ];
        for &v in &values {
            let rendered = Value::Num(v).render();
            let back = Value::parse(&rendered).unwrap();
            let b = back.as_f64().unwrap();
            assert!(
                b == v || (b == 0.0 && v == 0.0),
                "{v:?} rendered as {rendered:?} parsed back as {b:?}"
            );
            // And a second render is byte-identical to the first.
            assert_eq!(back.render(), rendered);
        }
    }

    #[test]
    fn value_as_usize_guards_fractions_and_sign() {
        assert_eq!(Value::Num(5.0).as_usize(), Some(5));
        assert_eq!(Value::Num(5.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("5".into()).as_usize(), None);
    }

    #[test]
    fn names_with_quotes_and_backslashes_round_trip() {
        let mut r = BenchRecord::new("we\"ird\\name", 1, 1);
        r.push(BenchEntry {
            mode: "mo\"de\\x".into(),
            wall_ms: 1.0,
            events_processed: 1,
            peak_agents: 1,
            sim_total_s: 1.0,
            rounds: 1,
        });
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }
}
