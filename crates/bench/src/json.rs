//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! The CI perf-regression gate compares a freshly produced record against a
//! baseline committed under `ci/bench-baselines/`, so the format must be
//! writable *and* parseable without a JSON dependency (the build runs
//! offline). The schema is deliberately flat: one record per benchmark
//! binary, one entry per measured configuration, numbers only.
//!
//! # Example
//!
//! ```
//! use comdml_bench::{BenchEntry, BenchRecord};
//!
//! let mut rec = BenchRecord::new("fleet_churn", 10_000, 1_000);
//! rec.push(BenchEntry {
//!     mode: "semi_sync".into(),
//!     wall_ms: 1234.5,
//!     events_processed: 42,
//!     peak_agents: 10_100,
//!     sim_total_s: 9.9,
//!     rounds: 1_000,
//! });
//! let json = rec.to_json();
//! let back = BenchRecord::parse(&json).unwrap();
//! assert_eq!(back, rec);
//! ```

use std::fs;
use std::path::{Path, PathBuf};

/// One measured configuration (typically an aggregation mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Configuration label (e.g. `synchronous`).
    pub mode: String,
    /// Wall-clock milliseconds the configuration took.
    pub wall_ms: f64,
    /// Simulation events executed.
    pub events_processed: u64,
    /// Largest concurrent fleet membership observed.
    pub peak_agents: usize,
    /// Total simulated seconds produced.
    pub sim_total_s: f64,
    /// Rounds simulated in this configuration.
    pub rounds: usize,
}

/// A benchmark run: identity plus one [`BenchEntry`] per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (the `BENCH_<name>.json` file stem suffix).
    pub bench: String,
    /// Agents at fleet construction.
    pub agents: usize,
    /// Nominal rounds per configuration.
    pub rounds: usize,
    /// Measured configurations.
    pub entries: Vec<BenchEntry>,
}

impl BenchRecord {
    /// Starts an empty record.
    pub fn new(bench: &str, agents: usize, rounds: usize) -> Self {
        Self { bench: bench.to_string(), agents, rounds, entries: Vec::new() }
    }

    /// Appends one configuration's measurements.
    pub fn push(&mut self, entry: BenchEntry) {
        self.entries.push(entry);
    }

    /// Renders the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"agents\": {},\n", self.agents));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"mode\": \"{}\", ", escape(&e.mode)));
            out.push_str(&format!("\"wall_ms\": {:.3}, ", e.wall_ms));
            out.push_str(&format!("\"events_processed\": {}, ", e.events_processed));
            out.push_str(&format!("\"peak_agents\": {}, ", e.peak_agents));
            out.push_str(&format!("\"sim_total_s\": {:.3}, ", e.sim_total_s));
            out.push_str(&format!("\"rounds\": {}", e.rounds));
            out.push_str(if i + 1 < self.entries.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a record previously produced by [`BenchRecord::to_json`].
    ///
    /// The parser is a minimal scanner for this module's own output plus
    /// whitespace variations — not a general JSON parser.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let bench = find_string(s, "bench").ok_or("missing \"bench\"")?;
        let agents = find_number(s, "agents").ok_or("missing \"agents\"")? as usize;
        // The top-level "rounds" is the first occurrence; per-entry rounds
        // are parsed inside each braces group below.
        let rounds = find_number(s, "rounds").ok_or("missing \"rounds\"")? as usize;
        let list_start = s.find("\"entries\"").ok_or("missing \"entries\"")?;
        let mut entries = Vec::new();
        let mut rest = &s[list_start..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}').ok_or("unbalanced entry braces")? + open;
            let obj = &rest[open..=close];
            entries.push(BenchEntry {
                mode: find_string(obj, "mode").ok_or("entry missing \"mode\"")?,
                wall_ms: find_number(obj, "wall_ms").ok_or("entry missing \"wall_ms\"")?,
                events_processed: find_number(obj, "events_processed")
                    .ok_or("entry missing \"events_processed\"")?
                    as u64,
                peak_agents: find_number(obj, "peak_agents")
                    .ok_or("entry missing \"peak_agents\"")? as usize,
                sim_total_s: find_number(obj, "sim_total_s")
                    .ok_or("entry missing \"sim_total_s\"")?,
                rounds: find_number(obj, "rounds").ok_or("entry missing \"rounds\"")? as usize,
            });
            rest = &rest[close + 1..];
        }
        Ok(Self { bench, agents, rounds, entries })
    }

    /// Writes `<dir>/BENCH_<bench>.json`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes to the workspace default, `target/experiments/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("target").join("experiments"))
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Finds `"key": "value"` and returns the unescaped value, honouring the
/// backslash escapes [`escape`] emits (`\"` and `\\`).
fn find_string(s: &str, k: &str) -> Option<String> {
    let rest = after_key(s, k)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            other => out.push(other),
        }
    }
    None // unterminated string
}

/// Finds `"key": <number>` and parses the number.
fn find_number(s: &str, k: &str) -> Option<f64> {
    let rest = after_key(s, k)?;
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Returns the slice just past `"key":` and any whitespace.
fn after_key<'a>(s: &'a str, k: &str) -> Option<&'a str> {
    let pat = format!("\"{k}\"");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord::new("demo", 100, 10);
        r.push(BenchEntry {
            mode: "synchronous".into(),
            wall_ms: 12.5,
            events_processed: 999,
            peak_agents: 105,
            sim_total_s: 345.678,
            rounds: 10,
        });
        r.push(BenchEntry {
            mode: "asynchronous".into(),
            wall_ms: 7.25,
            events_processed: 123,
            peak_agents: 101,
            sim_total_s: 2.0,
            rounds: 10,
        });
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn parse_tolerates_whitespace_variations() {
        let loose = "{ \"bench\" :\"x\", \"agents\": 5, \"rounds\":2,\n\
                     \"entries\": [ { \"mode\":\"m\", \"wall_ms\": 1.5,\n\
                     \"events_processed\": 7, \"peak_agents\": 5,\n\
                     \"sim_total_s\": 0.25, \"rounds\": 2 } ] }";
        let r = BenchRecord::parse(loose).unwrap();
        assert_eq!(r.bench, "x");
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].events_processed, 7);
        assert_eq!(r.entries[0].wall_ms, 1.5);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("{\"bench\": \"x\"}").is_err());
    }

    #[test]
    fn writes_to_disk() {
        let r = sample();
        let dir = std::env::temp_dir().join("comdml_bench_json_test");
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_demo.json"));
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(BenchRecord::parse(&content).unwrap(), r);
    }

    #[test]
    fn empty_entries_round_trip() {
        let r = BenchRecord::new("empty", 0, 0);
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn names_with_quotes_and_backslashes_round_trip() {
        let mut r = BenchRecord::new("we\"ird\\name", 1, 1);
        r.push(BenchEntry {
            mode: "mo\"de\\x".into(),
            wall_ms: 1.0,
            events_processed: 1,
            peak_agents: 1,
            sim_total_s: 1.0,
            rounds: 1,
        });
        assert_eq!(BenchRecord::parse(&r.to_json()).unwrap(), r);
    }
}
