//! CSV report writer: every experiment binary can persist its rows so runs
//! are diffable and plottable without re-parsing stdout.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Accumulates experiment rows and writes a CSV under
/// `target/experiments/<name>.csv`.
///
/// # Example
///
/// ```
/// use comdml_bench::Report;
///
/// let mut report = Report::new("doc_example", &["method", "seconds"]);
/// report.row(&["ComDML".into(), "4342".into()]);
/// let path = report.write_to(std::env::temp_dir()).unwrap();
/// assert!(path.ends_with("doc_example.csv"));
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a name (file stem) and column header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.to_vec());
    }

    /// Number of accumulated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the CSV content.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<name>.csv`, creating the directory if needed, and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }

    /// Writes to the workspace's default location, `target/experiments/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("target").join("experiments"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips_simple_rows() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["3".into(), "4".into()]);
        assert_eq!(r.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut r = Report::new("t", &["x"]);
        r.row(&["hello, \"world\"".into()]);
        assert_eq!(r.to_csv(), "x\n\"hello, \"\"world\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn writes_to_disk() {
        let mut r = Report::new("unit_test_report", &["k", "v"]);
        r.row(&["x".into(), "1".into()]);
        let dir = std::env::temp_dir().join("comdml_report_test");
        let path = r.write_to(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("k,v\n"));
    }
}
