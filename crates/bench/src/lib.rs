//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the ComDML paper. See DESIGN.md for the experiment index
//! and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod json;
mod report;

pub use json::{BenchEntry, BenchRecord, Value};
pub use report::Report;

use comdml_baselines::{AllReduceDml, BaselineConfig, BrainTorrent, FedAvg, GossipLearning};
use comdml_core::{ComDml, ComDmlConfig, LearningCurve, RoundEngine};
use comdml_data::{DatasetSpec, DirichletPartitioner};
use comdml_simnet::{Topology, World, WorldConfig};

/// The six dataset × distribution cells of Table II with their target
/// accuracies.
pub fn table2_cells() -> Vec<(DatasetSpec, bool, f64)> {
    vec![
        (DatasetSpec::cifar10(), true, 0.90),
        (DatasetSpec::cifar10(), false, 0.85),
        (DatasetSpec::cifar100(), true, 0.65),
        (DatasetSpec::cifar100(), false, 0.60),
        (DatasetSpec::cinic10(), true, 0.75),
        (DatasetSpec::cinic10(), false, 0.65),
    ]
}

/// Builds the world for one Table II cell: `k` heterogeneous agents sharing
/// the dataset's training set; non-I.I.D. cells get Dirichlet(0.5) sizes
/// (label skew also skews per-agent sample counts).
pub fn world_for_dataset(
    spec: &DatasetSpec,
    iid: bool,
    k: usize,
    seed: u64,
    topo: Topology,
) -> World {
    let mut world = WorldConfig::heterogeneous(k, seed)
        .total_samples(spec.train_samples)
        .batch_size(100)
        .topology(topo)
        .build();
    if !iid {
        // Dirichlet label skew implies uneven per-agent dataset sizes.
        let labels: Vec<usize> = (0..spec.train_samples).map(|i| i % spec.num_classes).collect();
        let parts = DirichletPartitioner::new(0.5, seed ^ 0xd1).partition(&labels, k);
        for (agent, part) in world.agents_mut().iter_mut().zip(parts) {
            agent.num_samples = part.len().max(1);
        }
    }
    world
}

/// All five methods of Table II, boxed behind the shared engine trait.
pub fn all_methods(base: BaselineConfig, comdml: ComDmlConfig) -> Vec<Box<dyn RoundEngine>> {
    vec![
        Box::new(ComDml::new(comdml)),
        Box::new(GossipLearning::new(base.clone())),
        Box::new(BrainTorrent::new(base.clone())),
        Box::new(AllReduceDml::new(base.clone())),
        Box::new(FedAvg::new(base)),
    ]
}

/// Drives an engine for `rounds` rounds on a clone of `world`, returning
/// total simulated seconds.
pub fn run_rounds(engine: &mut dyn RoundEngine, world: &World, rounds: usize) -> f64 {
    let mut world = world.clone();
    (0..rounds).map(|r| engine.round_time_s(&mut world, r)).sum()
}

/// Rounds-to-target with the participation-sampling penalty: when only a
/// `sampling_rate` fraction of agents contributes per round, the global
/// model sees proportionally less data, inflating the round count
/// (sub-linearly — overlapping updates still transfer). The penalty is
/// [`comdml_core::sampling_penalty`], the same factor the round-driven
/// [`comdml_core::LearningModel`] applies per round — which is exactly why
/// the two agree under constant efficiency.
pub fn rounds_with_sampling(
    curve: &LearningCurve,
    target: f64,
    engine_factor: f64,
    sampling_rate: f64,
) -> usize {
    curve.rounds_to(target, engine_factor * comdml_core::sampling_penalty(sampling_rate))
}

/// Formats seconds with thousands separators, matching the tables' style.
pub fn fmt_s(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths.iter()).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_cells_with_paper_targets() {
        let cells = table2_cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].2, 0.90);
        assert_eq!(cells[3].2, 0.60);
    }

    #[test]
    fn non_iid_world_has_uneven_sizes() {
        let spec = DatasetSpec::cifar10();
        let iid = world_for_dataset(&spec, true, 10, 1, Topology::Full);
        let non = world_for_dataset(&spec, false, 10, 1, Topology::Full);
        let spread = |w: &World| {
            let sizes: Vec<usize> = w.agents().iter().map(|a| a.num_samples).collect();
            *sizes.iter().max().unwrap() as f64 / *sizes.iter().min().unwrap() as f64
        };
        assert!(spread(&non) > spread(&iid));
    }

    #[test]
    fn all_methods_report_distinct_names() {
        let engines = all_methods(BaselineConfig::default(), ComDmlConfig::default());
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 5);
        let mut unique = names.clone();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn sampling_penalty_inflates_rounds() {
        let curve = LearningCurve::cifar10(true);
        let full = rounds_with_sampling(&curve, 0.80, 1.0, 1.0);
        let sampled = rounds_with_sampling(&curve, 0.80, 1.0, 0.2);
        assert!(sampled > full);
    }

    #[test]
    fn fmt_s_inserts_separators() {
        assert_eq!(fmt_s(1234567.2), "1,234,567");
        assert_eq!(fmt_s(999.4), "999");
    }
}
