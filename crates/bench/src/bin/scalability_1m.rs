//! Million-agent scalability benchmark: a 1,000,000-agent fleet under
//! continuous Poisson arrival / exponential-departure churn, driven for 100
//! semi-synchronous rounds end to end through `FleetSim` at the coarse
//! event granularity.
//!
//! Per-round participation sampling (5% cohorts, the cross-device regime
//! the paper's fleet sections assume) keeps each round's pairing and event
//! load at the ~50k-agent scale while the membership process, world state
//! and churn run over the full million agents. The target is < 60 s wall
//! for the whole run; the measured wall lands in
//! `target/experiments/BENCH_scalability_1m.json`, which the CI perf gate
//! compares against `ci/bench-baselines/BENCH_scalability_1m.json`.
//!
//! ```sh
//! cargo run --release --bin scalability_1m            # full 1M benchmark
//! cargo run --release --bin scalability_1m -- --smoke # 100k determinism check
//! ```
//!
//! `--smoke` runs a reduced 100,000-agent × 10-round fleet twice — pair
//! batches inline (threads = 1) and on 8 threads — and fails (exit code 1)
//! unless the two report digests match bit for bit: the parallel path must
//! be indistinguishable from the sequential one.

use std::time::Instant;

use comdml_bench::{BenchEntry, BenchRecord};
use comdml_core::{AggregationMode, ComDmlConfig, EventGranularity, FleetSim};
use comdml_simnet::{ArrivalProcess, FleetConfig, SessionLifetime};

const AGENTS: usize = 1_000_000;
const ROUNDS: usize = 100;
const SEED: u64 = 42;
/// Cross-device cohort: 5% of the live fleet participates per round.
const SAMPLING_RATE: f64 = 0.05;
/// Wall-clock budget for the full run (the tentpole target).
const TARGET_WALL_S: f64 = 60.0;

/// Same birth-death equilibrium as `fleet_churn`, scaled to the fleet:
/// ~1 arrival/s per 10,000 agents against 10,000 s mean sessions.
fn fleet(agents: usize) -> FleetConfig {
    FleetConfig::new(agents, SEED)
        .arrivals(ArrivalProcess::Poisson { rate_per_s: agents as f64 / 10_000.0 })
        .lifetime(SessionLifetime::Exponential { mean_s: 10_000.0 })
        .samples_per_agent(500)
        .batch_size(100)
        .max_agents(2 * agents)
        .recycle_slots(true)
}

fn config(threads: usize) -> ComDmlConfig {
    ComDmlConfig {
        churn: None, // membership churn is the subject; profiles stay fixed
        aggregation: AggregationMode::SemiSynchronous { quorum: 0.8, staleness_s: f64::MAX },
        candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
        granularity: EventGranularity::Coarse,
        sampling_rate: SAMPLING_RATE,
        threads,
        ..ComDmlConfig::default()
    }
}

struct RunStats {
    digest: u64,
    wall_s: f64,
    events: u64,
    peak_agents: usize,
    sim_total_s: f64,
    phases: Vec<(String, f64)>,
}

fn run(name: &str, agents: usize, rounds: usize, threads: usize) -> RunStats {
    let build = Instant::now();
    let mut sim = FleetSim::new(fleet(agents), config(threads));
    let build_s = build.elapsed().as_secs_f64();
    comdml_obs::metrics().reset();
    let start = Instant::now();
    let report = sim.run(rounds);
    let wall_s = start.elapsed().as_secs_f64();
    let phases = comdml_obs::metrics().snapshot().phase_totals();
    // Order-sensitive digest over the quantities that must reproduce
    // (same fold as `fleet_churn`).
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        report.total_sim_s.to_bits(),
        report.effective_rounds.to_bits(),
        report.events_processed,
        report.peak_agents as u64,
        report.arrivals as u64,
        report.departures as u64,
    ] {
        digest = (digest ^ v).wrapping_mul(0x1000_0000_01b3);
    }
    println!(
        "{name:<22} {rounds:>3} rounds of {agents}: sim {:>10.1}s, {:>9} events, \
         peak {} agents, +{}/-{} churn, build {build_s:.2}s, wall {wall_s:.2}s \
         ({:.2} M events/s)",
        report.total_sim_s,
        report.events_processed,
        report.peak_agents,
        report.arrivals,
        report.departures,
        report.events_processed as f64 / wall_s / 1e6,
    );
    RunStats {
        digest,
        wall_s,
        events: report.events_processed,
        peak_agents: report.peak_agents,
        sim_total_s: report.total_sim_s,
        phases,
    }
}

fn main() -> std::process::ExitCode {
    comdml_obs::set_metrics_enabled(true);
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // Reduced-size determinism check: the parallel pair-batch path must
        // reproduce the sequential digests bit for bit.
        println!("scalability_1m --smoke: 100,000 agents x 10 rounds, threads 1 vs 8\n");
        let sequential = run("smoke_sequential", 100_000, 10, 1);
        let parallel = run("smoke_parallel_t8", 100_000, 10, 8);
        if sequential.digest != parallel.digest {
            comdml_obs::error!(
                "scalability_1m",
                "digest mismatch: sequential {:016x} != 8-thread {:016x}",
                sequential.digest,
                parallel.digest
            );
            return std::process::ExitCode::FAILURE;
        }
        println!("\nsmoke: ok (digest {:016x}, threads 1 == threads 8)", sequential.digest);
        return std::process::ExitCode::SUCCESS;
    }

    println!(
        "scalability_1m: {AGENTS} agents, {ROUNDS} semi-sync churning rounds, \
         {:.0}% cohorts\n",
        SAMPLING_RATE * 100.0
    );
    let stats = run("semi_sync_q80", AGENTS, ROUNDS, 1);
    let verdict = if stats.wall_s < TARGET_WALL_S { "within" } else { "OVER" };
    println!("\ntarget: {verdict} the {TARGET_WALL_S:.0} s budget ({:.2} s)", stats.wall_s);

    let mut record = BenchRecord::new("scalability_1m", AGENTS, ROUNDS);
    record.push(BenchEntry {
        mode: "semi_sync_q80".into(),
        wall_ms: stats.wall_s * 1e3,
        events_processed: stats.events,
        peak_agents: stats.peak_agents,
        sim_total_s: stats.sim_total_s,
        rounds: ROUNDS,
        phases: stats.phases,
    });
    match record.write_default() {
        Ok(path) => println!("bench record written to {}", path.display()),
        Err(e) => comdml_obs::error!("scalability_1m", "failed to write bench record: {e}"),
    }
    std::process::ExitCode::SUCCESS
}
