//! Extended comparison beyond Table II: ComDML against *eight* alternatives
//! including the straggler-mitigation families the paper discusses in §II
//! (tier-based selection, straggler dropping, FedProx partial work) on the
//! IID CIFAR-10 cell.

use comdml_baselines::{
    AllReduceDml, BaselineConfig, BrainTorrent, DropStragglers, FedAvg, FedProx, GossipLearning,
    TierBased,
};
use comdml_bench::fmt_s;
use comdml_core::{time_to_accuracy, ComDml, ComDmlConfig, LearningCurve, RoundEngine};
use comdml_simnet::WorldConfig;

fn main() {
    let world = WorldConfig::heterogeneous(10, 42).total_samples(50_000).build();
    let curve = LearningCurve::cifar10(true);
    let target = 0.90;
    let base = || BaselineConfig { churn: None, ..BaselineConfig::default() };

    let mut engines: Vec<Box<dyn RoundEngine>> = vec![
        Box::new(ComDml::new(ComDmlConfig { churn: None, ..ComDmlConfig::default() })),
        Box::new(FedAvg::new(base())),
        Box::new(AllReduceDml::new(base())),
        Box::new(BrainTorrent::new(base())),
        Box::new(GossipLearning::new(base())),
        Box::new(TierBased::new(base(), 5)),
        Box::new(DropStragglers::new(base(), 0.3)),
        Box::new(FedProx::new(base(), 0.5)),
    ];

    println!("Extended baselines — 10 agents, IID CIFAR-10 to 90% (seconds)\n");
    println!("{:<18} {:>8} {:>12} {:>12}", "method", "rounds", "s / round", "total");
    let mut results = Vec::new();
    for engine in engines.iter_mut() {
        let t = time_to_accuracy(engine.as_mut(), &world, &curve, target);
        results.push(t.clone());
        println!(
            "{:<18} {:>8} {:>12.1} {:>12}",
            t.method,
            t.rounds,
            t.mean_round_s,
            fmt_s(t.total_time_s)
        );
    }

    let comdml = results[0].total_time_s;
    let best_other = results[1..].iter().map(|t| t.total_time_s).fold(f64::INFINITY, f64::min);
    println!(
        "\nComDML vs the best straggler-mitigation alternative: {:.0}% faster",
        (1.0 - comdml / best_other) * 100.0
    );
    println!(
        "(tiering/dropping/FedProx shorten rounds by skipping or shrinking the \
         stragglers' work; ComDML instead completes it on spare capacity)"
    );
}
