//! Quantifies §III-B's design choice: classic split learning synchronizes
//! on *every batch* (activation up, gradient back), while local-loss split
//! training streams activations one way and never waits.
//!
//! Compares per-round time and communication volume for a 2-agent pair
//! across the paper's link grid.

use comdml_baselines::{BaselineConfig, ClassicSplitLearning};
use comdml_bench::fmt_s;
use comdml_collective::AllReduceAlgorithm;
use comdml_core::{simulate_round, Pairing, RoundEngine, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{Adjacency, AgentId, AgentProfile, AgentState, World};

fn main() {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let agent_layers = 19usize; // both schemes keep 19 layers on the agent
    let offload = spec.num_weighted_layers() - agent_layers;

    println!(
        "classic split learning vs local-loss split training\n\
         (ResNet-56, batch 100, agent keeps {agent_layers} layers; per-round times)\n"
    );
    println!(
        "{:>8}  {:>16}  {:>16}  {:>10}  {:>14}",
        "link", "classic SL (s)", "local-loss (s)", "speedup", "SL bytes/round"
    );

    for link in [10.0f64, 20.0, 50.0, 100.0] {
        let agents = vec![
            AgentState::new(AgentId(0), AgentProfile::new(0.5, link), 5_000, 100),
            AgentState::new(AgentId(1), AgentProfile::new(4.0, link), 5_000, 100),
        ];
        let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
        let world = World::from_parts(agents, adj, 0);

        // Classic SL: the fast agent plays "server" for the slow one.
        let mut sl = ClassicSplitLearning::new(
            BaselineConfig { churn: None, ..BaselineConfig::default() },
            agent_layers,
            4.0,
        );
        let t_sl = sl.round_time_s(&mut world.clone(), 0);
        let sl_bytes = sl.bytes_per_batch() * world.agent(AgentId(0)).num_batches() as u64;

        // Local-loss: the ComDML pipeline with the same split.
        let pairings =
            vec![Pairing { slow: AgentId(0), fast: Some(AgentId(1)), offload, est_time_s: 0.0 }];
        let outcome =
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling);
        let t_ll = outcome.compute_s;

        println!(
            "{:>5} Mbps  {:>16}  {:>16}  {:>9.1}x  {:>14}",
            link,
            fmt_s(t_sl),
            fmt_s(t_ll),
            t_sl / t_ll,
            fmt_s(sl_bytes as f64)
        );
    }
    println!(
        "\nlocal-loss training halves the traffic (no gradient backhaul) and \
         hides it behind compute — exactly the overhead §III-B eliminates"
    );
}
