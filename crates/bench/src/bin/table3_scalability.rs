//! Regenerates **Table III**: training time to 80% accuracy on I.I.D.
//! CIFAR-10 with 20 / 50 / 100 agents (20% participation sampling) for
//! ResNet-56 and ResNet-110.
//!
//! Per-agent workload is held constant (5 000 samples each, matching the
//! 10-agent CIFAR-10 split) so scaling stresses scheduling and aggregation
//! rather than shrinking local epochs — see EXPERIMENTS.md.

use comdml_baselines::BaselineConfig;
use comdml_bench::{all_methods, fmt_s, rounds_with_sampling, row, run_rounds};
use comdml_core::{ComDmlConfig, LearningCurve};
use comdml_cost::ModelSpec;
use comdml_simnet::WorldConfig;

fn main() {
    let sampling = 0.2;
    let target = 0.80;
    let widths = [12usize, 8, 12, 12, 14, 12, 12];
    println!("Table III — training time (s) to 80% on IID CIFAR-10, 20% sampling\n");
    println!(
        "{}",
        row(
            &["Model", "Agents", "ComDML", "Gossip L.", "BrainTorrent", "AllReduce", "FedAvg"]
                .map(String::from),
            &widths
        )
    );

    for (model, curve) in [
        (ModelSpec::resnet56(), LearningCurve::cifar10(true)),
        (ModelSpec::resnet110(), LearningCurve::cifar10(true).deeper()),
    ] {
        for k in [20usize, 50, 100] {
            let world =
                WorldConfig::heterogeneous(k, 42).total_samples(5_000 * k).batch_size(100).build();
            let engines = all_methods(
                BaselineConfig {
                    model: model.clone(),
                    sampling_rate: sampling,
                    ..BaselineConfig::default()
                },
                ComDmlConfig {
                    model: model.clone(),
                    sampling_rate: sampling,
                    curve,
                    ..ComDmlConfig::default()
                },
            );
            let mut cells = vec![model.name().to_string(), k.to_string()];
            for mut engine in engines {
                let rounds = rounds_with_sampling(&curve, target, engine.rounds_factor(), sampling);
                let total = run_rounds(engine.as_mut(), &world, rounds);
                cells.push(fmt_s(total));
            }
            println!("{}", row(&cells, &widths));
        }
    }
}
