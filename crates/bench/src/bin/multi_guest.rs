//! Multi-guest offloading extension (Eq. 4 permits a fast agent to host
//! several slow agents; Algorithm 1 assigns at most one). Measures when the
//! extra capacity pays off: fleets where stragglers outnumber helpers.

use comdml_core::{pair_with_capacity, PairingScheduler, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{Adjacency, AgentId, AgentProfile, AgentState, World};

fn skewed_world(num_slow: usize, num_fast: usize) -> World {
    let k = num_slow + num_fast;
    let mut agents = Vec::with_capacity(k);
    for i in 0..num_slow {
        agents.push(AgentState::new(AgentId(i), AgentProfile::new(0.2, 100.0), 5_000, 100));
    }
    for i in 0..num_fast {
        agents.push(AgentState::new(
            AgentId(num_slow + i),
            AgentProfile::new(4.0, 100.0),
            2_000,
            100,
        ));
    }
    let mut m = vec![vec![true; k]; k];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = false;
    }
    World::from_parts(agents, Adjacency::from_matrix(m), 0)
}

fn main() {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);

    println!("multi-guest offloading: estimated round makespan (s)\n");
    println!("{:<22} {:>10} {:>10} {:>10} {:>10}", "fleet", "solo", "cap 1", "cap 2", "cap 3");
    for (num_slow, num_fast) in [(2usize, 2usize), (4, 2), (6, 2), (6, 3)] {
        let world = skewed_world(num_slow, num_fast);
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let solo = ids.iter().map(|&id| est.solo_time_s(world.agent(id))).fold(0.0, f64::max);
        let mut row =
            format!("{:<22} {:>10.1}", format!("{num_slow} slow / {num_fast} fast"), solo);
        for cap in [1usize, 2, 3] {
            let pairings = if cap == 1 {
                PairingScheduler::new().pair(&world, &ids, &est)
            } else {
                pair_with_capacity(&world, &ids, &est, cap)
            };
            let makespan = pairings.iter().map(|p| p.est_time_s).fold(0.0, f64::max);
            row.push_str(&format!(" {makespan:>10.1}"));
        }
        println!("{row}");
    }
    println!(
        "\nWith more stragglers than helpers, capacity > 1 keeps shrinking the \
         makespan — the generalization Eq. 4's formulation already allows."
    );
}
