//! Ablation study of ComDML's design choices (simulated time):
//!
//! 1. **Dynamic vs static pairing** — re-pair every round vs freeze the
//!    round-0 pairing, under profile churn (§IV-A motivates dynamic).
//! 2. **Slowest-first vs arbitrary pairing order** — Algorithm 1's priority
//!    rule vs visiting agents by id.
//! 3. **Split-point search breadth** — all `L` candidate splits vs the
//!    Table I grid vs a single fixed split.
//! 4. **AllReduce algorithm** — halving/doubling vs ring (§IV-B's choice).
//! 5. **Quantized aggregation** — int8 model payloads (§IV-B's extension).

use comdml_bench::fmt_s;
use comdml_collective::{AllReduceAlgorithm, CollectiveCost};
use comdml_core::{
    simulate_round, ChurnPolicy, ComDml, ComDmlConfig, LearningCurve, PairingOrder,
    PairingScheduler, TrainingTimeEstimator,
};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{AgentId, WorldConfig};

fn main() {
    let spec = ModelSpec::resnet56();
    let cal = CostCalibration::default();
    let profile = SplitProfile::new(&spec, 100);
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let curve = LearningCurve::cifar10(true);
    let rounds = curve.rounds_to(0.90, 1.0);

    println!("ComDML ablation study (10 agents, ResNet-56, {rounds} rounds)\n");

    // 1. Dynamic vs static pairing under churn.
    {
        let world = WorldConfig::heterogeneous(10, 42).total_samples(50_000).build();
        let churn = Some(ChurnPolicy { interval: 5, fraction: 0.3 });
        let mut dynamic = ComDml::new(ComDmlConfig { churn, ..ComDmlConfig::default() });
        let mut w = world.clone();
        let dynamic_total: f64 = (0..rounds).map(|r| dynamic.run_round(&mut w, r).round_s()).sum();

        // Static: freeze the round-0 pairing and keep simulating it while
        // profiles churn underneath.
        let mut w = world.clone();
        let ids: Vec<AgentId> = w.agents().iter().map(|a| a.id).collect();
        let frozen = PairingScheduler::new().pair(&w, &ids, &est);
        let mut static_total = 0.0;
        for r in 0..rounds {
            if r > 0 && r % 5 == 0 {
                w.churn_profiles(0.3);
            }
            static_total +=
                simulate_round(&w, &frozen, &est, &cal, AllReduceAlgorithm::HalvingDoubling)
                    .round_s();
        }
        println!(
            "1. pairing under churn:   dynamic {:>8}s   static {:>8}s   ({:+.0}% for dynamic)",
            fmt_s(dynamic_total),
            fmt_s(static_total),
            (1.0 - dynamic_total / static_total) * 100.0
        );
    }

    // 2. Slowest-first vs id-order pairing.
    {
        let world = WorldConfig::heterogeneous(10, 7).total_samples(50_000).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        let sched = PairingScheduler::new();
        let run = |order| {
            let pairings = sched.pair_with_order(&world, &ids, &est, order);
            simulate_round(&world, &pairings, &est, &cal, AllReduceAlgorithm::HalvingDoubling)
                .round_s()
        };
        let slowest = run(PairingOrder::SlowestFirst);
        let by_id = run(PairingOrder::ByAgentId);
        println!(
            "2. pairing order:         slowest-first {:>6.1}s/round   by-id {:>6.1}s/round",
            slowest, by_id
        );
    }

    // 3. Split-candidate breadth.
    {
        let world = WorldConfig::heterogeneous(10, 11).total_samples(50_000).build();
        for (name, candidates) in [
            ("all 56 splits", None),
            ("table-I grid (7)", Some(vec![1usize, 10, 19, 28, 37, 46, 55])),
            ("single split (28)", Some(vec![28usize])),
        ] {
            let mut engine = ComDml::new(ComDmlConfig {
                candidate_offloads: candidates,
                churn: None,
                ..ComDmlConfig::default()
            });
            let report = engine.run(&world, 0.90);
            println!(
                "3. candidates {:<18} mean round {:>6.1}s  total {:>8}s",
                name,
                report.mean_round_s,
                fmt_s(report.total_time_s)
            );
        }
    }

    // 4. AllReduce algorithm at scale.
    {
        let b = spec.model_bytes() as u64;
        for k in [10usize, 100] {
            let hd = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, k, b)
                .time_s(cal.bytes_per_s(10.0), cal.link_latency_s);
            let ring = CollectiveCost::new(AllReduceAlgorithm::Ring, k, b)
                .time_s(cal.bytes_per_s(10.0), cal.link_latency_s);
            println!("4. allreduce k={k:<4}       halving/doubling {hd:>6.2}s   ring {ring:>6.2}s");
        }
    }

    // 5. Quantized aggregation payload.
    {
        let b = spec.model_bytes() as u64;
        let full = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 10, b)
            .time_s(cal.bytes_per_s(10.0), cal.link_latency_s);
        let quant = CollectiveCost::new(AllReduceAlgorithm::HalvingDoubling, 10, b / 4)
            .time_s(cal.bytes_per_s(10.0), cal.link_latency_s);
        println!(
            "5. int8 aggregation:      fp32 {full:>6.2}s   int8 {quant:>6.2}s per round \
             (worst-case error {:.5})",
            comdml_collective::Int8Quantizer::fit(&[1.0, -1.0]).max_error()
        );
    }
}
