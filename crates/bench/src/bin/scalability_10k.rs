//! Fleet-scale stress test of the event-driven round engine: a 10,000-agent
//! heterogeneous world simulating 100 full ComDML rounds per aggregation
//! mode, wall-clock timed.
//!
//! This exercises the two scalability changes of the event-engine refactor:
//!
//! * `PairingScheduler` runs on sorted per-class candidate lists with O(1)
//!   paired-membership checks (no linear `contains` scans), and
//! * the round executes as typed events on a shared clock, so the same code
//!   path drives synchronous, semi-synchronous and asynchronous aggregation.
//!
//! Results land in `target/experiments/scalability_10k.csv`, with the
//! machine-readable `target/experiments/BENCH_scalability.json` feeding the
//! CI perf-regression gate (see `ci/bench-baselines/`).
//!
//! ```sh
//! cargo run --release --bin scalability_10k
//! ```

use std::time::Instant;

use comdml_bench::{BenchEntry, BenchRecord, Report};
use comdml_core::{AggregationMode, ComDml, ComDmlConfig};
use comdml_simnet::WorldConfig;

const AGENTS: usize = 10_000;
const ROUNDS: usize = 100;

fn main() {
    // Phase attribution for the bench record (pairing vs. event loop vs.
    // aggregation); spans only observe, so sim totals stay bit-identical.
    comdml_obs::set_metrics_enabled(true);
    // 500 samples per agent keeps per-round work realistic (5 batches per
    // agent) without the dataset itself dominating setup time.
    let world =
        WorldConfig::heterogeneous(AGENTS, 42).total_samples(500 * AGENTS).batch_size(100).build();
    println!(
        "world: {} agents, mean {:.2} CPUs, density {:.2}\n",
        AGENTS,
        world.summary().mean_cpus,
        world.summary().density
    );

    let mut report = Report::new(
        "scalability_10k",
        &["mode", "agents", "rounds", "sim_total_s", "mean_offloads", "wall_clock_s"],
    );
    let mut record = BenchRecord::new("scalability", AGENTS, ROUNDS);

    for (name, mode) in [
        ("synchronous", AggregationMode::Synchronous),
        ("semi_sync_q80", AggregationMode::SemiSynchronous { quorum: 0.8, staleness_s: f64::MAX }),
        ("asynchronous", AggregationMode::Asynchronous),
    ] {
        let mut engine = ComDml::new(ComDmlConfig {
            churn: None,
            aggregation: mode,
            // Profiling every one of the 57 ResNet-56 cuts per candidate is
            // pointless at fleet scale; six representative cuts keep the
            // schedule quality while bounding estimator work.
            candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
            ..ComDmlConfig::default()
        });
        let mut w = world.clone();
        comdml_obs::metrics().reset();
        let start = Instant::now();
        let mut sim_total = 0.0;
        let mut offloads = 0usize;
        let mut events = 0u64;
        for r in 0..ROUNDS {
            let outcome = engine.run_round(&mut w, r);
            sim_total += outcome.round_s();
            offloads += outcome.num_offloads;
            events += engine.last_report().map_or(0, |rep| rep.events_processed);
        }
        let wall = start.elapsed().as_secs_f64();
        let phases = comdml_obs::metrics().snapshot().phase_totals();
        println!(
            "{name:<14} {ROUNDS} rounds of {AGENTS} agents: sim {sim_total:>12.1}s, \
             {:.0} offloads/round, wall clock {wall:.2}s",
            offloads as f64 / ROUNDS as f64
        );
        report.row(&[
            name.to_string(),
            AGENTS.to_string(),
            ROUNDS.to_string(),
            format!("{sim_total:.3}"),
            format!("{:.1}", offloads as f64 / ROUNDS as f64),
            format!("{wall:.3}"),
        ]);
        record.push(BenchEntry {
            mode: name.to_string(),
            wall_ms: wall * 1e3,
            events_processed: events,
            peak_agents: AGENTS,
            sim_total_s: sim_total,
            rounds: ROUNDS,
            phases,
        });
    }

    match report.write_default() {
        Ok(path) => println!("\nreport written to {}", path.display()),
        Err(e) => comdml_obs::error!("scalability_10k", "failed to write report: {e}"),
    }
    match record.write_default() {
        Ok(path) => println!("bench record written to {}", path.display()),
        Err(e) => comdml_obs::error!("scalability_10k", "failed to write bench record: {e}"),
    }
}
