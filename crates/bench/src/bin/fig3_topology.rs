//! Regenerates **Fig. 3**: total training time under a random topology with
//! only 20% link connectivity, 50 agents, on the three I.I.D. datasets.
//!
//! Printed as a text bar chart (one bar per method per dataset).

use comdml_baselines::BaselineConfig;
use comdml_bench::{all_methods, fmt_s, world_for_dataset};
use comdml_core::{time_to_accuracy, ComDmlConfig, LearningCurve};
use comdml_data::DatasetSpec;
use comdml_simnet::Topology;

fn main() {
    let k = 50;
    let cells = [
        (DatasetSpec::cifar10(), 0.90),
        (DatasetSpec::cifar100(), 0.65),
        (DatasetSpec::cinic10(), 0.75),
    ];

    println!("Fig. 3 — training time (s) under 20% link connectivity, 50 agents, IID\n");
    for (spec, target) in cells {
        let world = world_for_dataset(&spec, true, k, 42, Topology::random(0.2));
        let curve = LearningCurve::for_dataset(&spec.name, true);
        println!("{} (target {:.0}%):", spec.name, target * 100.0);
        let mut engines = all_methods(
            BaselineConfig::default(),
            ComDmlConfig { curve, ..ComDmlConfig::default() },
        );
        // Gossip mixes through the sparse graph's conductance.
        let density = world.adjacency().density();
        engines[1] = Box::new(
            comdml_baselines::GossipLearning::new(BaselineConfig::default())
                .with_topology_density(density),
        );
        let mut results = Vec::new();
        for mut engine in engines {
            let t = time_to_accuracy(engine.as_mut(), &world, &curve, target);
            results.push((t.method.clone(), t.total_time_s));
        }
        let max = results.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        for (name, v) in &results {
            let bar_len = ((v / max) * 48.0).round() as usize;
            println!("  {:<16} {:>10}  {}", name, fmt_s(*v), "#".repeat(bar_len.max(1)));
        }
        println!();
    }
}
