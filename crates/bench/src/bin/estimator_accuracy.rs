//! Validates Algorithm 1's core assumption: the `AgentTrainingTime`
//! estimate (line 18's closed form) must predict the *simulated* pair
//! round time well enough to rank pairing options correctly.
//!
//! Reports the relative error of the estimate against the per-batch
//! pipeline simulation across the full profile grid, plus how often the
//! estimator picks the truly best split.

use comdml_collective::AllReduceAlgorithm;
use comdml_core::{simulate_round, Pairing, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{
    Adjacency, AgentId, AgentProfile, AgentState, World, CPU_PROFILES, LINK_PROFILES_MBPS,
};

fn main() {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);

    let mut errors = Vec::new();
    let mut rank_hits = 0usize;
    let mut rank_total = 0usize;

    println!("estimator vs pipeline simulation (ResNet-56, 5k samples each)\n");
    println!(
        "{:>10} {:>10} {:>8} {:>6} {:>12} {:>12} {:>8}",
        "slow cpus", "fast cpus", "link", "m*", "estimate", "simulated", "err"
    );

    for &slow_cpus in &CPU_PROFILES[2..] {
        for &fast_cpus in &CPU_PROFILES[..2] {
            for &link in &LINK_PROFILES_MBPS {
                let agents = vec![
                    AgentState::new(AgentId(0), AgentProfile::new(slow_cpus, link), 5_000, 100),
                    AgentState::new(AgentId(1), AgentProfile::new(fast_cpus, link), 5_000, 100),
                ];
                let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
                let world = World::from_parts(agents, adj, 0);
                let slow = world.agent(AgentId(0));
                let fast = world.agent(AgentId(1));
                let d = est.estimate(slow, fast, est.solo_time_s(fast), link);
                if d.offload == 0 {
                    continue;
                }

                let simulate = |m: usize| {
                    let pairings = vec![Pairing {
                        slow: AgentId(0),
                        fast: Some(AgentId(1)),
                        offload: m,
                        est_time_s: 0.0,
                    }];
                    simulate_round(
                        &world,
                        &pairings,
                        &est,
                        &cal,
                        AllReduceAlgorithm::HalvingDoubling,
                    )
                    .compute_s
                };
                let simulated = simulate(d.offload);
                let err = (d.est_time_s - simulated).abs() / simulated;
                errors.push(err);

                // How close is the estimator's pick to the true optimum
                // over every split, as the pipeline simulation sees it?
                let best_sim = (1..56).map(simulate).fold(f64::INFINITY, f64::min);
                rank_total += 1;
                if simulated <= best_sim * 1.25 {
                    rank_hits += 1;
                }

                println!(
                    "{:>10} {:>10} {:>8} {:>6} {:>11.1}s {:>11.1}s {:>7.1}%",
                    slow_cpus,
                    fast_cpus,
                    link,
                    d.offload,
                    d.est_time_s,
                    simulated,
                    err * 100.0
                );
            }
        }
    }

    let mean_err = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    println!(
        "\nmean |estimate - simulated| / simulated = {:.1}%  ({} configurations)",
        mean_err * 100.0,
        errors.len()
    );
    println!(
        "estimator's split within 25% of the true (pipeline) optimum in {rank_hits}/{rank_total} cases"
    );
    println!(
        "\n(The estimate is *conservative*: line 18 serializes communication with \
         the fast side's compute, while the pipeline overlaps them — safe for \
         scheduling, pessimistic in absolute terms.)"
    );
}
