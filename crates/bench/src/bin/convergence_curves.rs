//! Empirical companion to **Theorem 1**: both the slow agent-side and fast
//! agent-side models converge under local-loss split training, on real
//! gradients (miniature synthetic task), for IID and non-IID data.

use comdml_core::{RealFleetConfig, RealSplitFleet};

fn run(label: &str, config: RealFleetConfig) {
    let rounds = 12;
    let mut fleet = RealSplitFleet::new(config);
    let report = fleet.run(rounds);
    println!("{label}");
    println!("{:>6} {:>12} {:>12} {:>10}", "round", "slow loss", "fast loss", "accuracy");
    for r in 0..rounds {
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>9.1}%",
            r + 1,
            report.slow_losses[r],
            report.fast_losses[r],
            report.round_accuracies[r] * 100.0
        );
    }
    let improved = report.slow_losses[rounds - 1] < report.slow_losses[0]
        && report.fast_losses[rounds - 1] < report.fast_losses[0];
    println!(
        "  -> slow and fast sides {} (final accuracy {:.1}%)\n",
        if improved { "both converge" } else { "did NOT both improve" },
        report.final_accuracy() * 100.0
    );
}

fn main() {
    println!("Theorem 1 (empirical) — local-loss split training convergence\n");
    run(
        "IID split, offload 3 layers:",
        RealFleetConfig { iid: true, ..RealFleetConfig::default() },
    );
    run(
        "non-IID split (Dirichlet 0.5), offload 3 layers:",
        RealFleetConfig { iid: false, ..RealFleetConfig::default() },
    );
    run(
        "IID split, deeper offload (5 layers):",
        RealFleetConfig { offload: 5, ..RealFleetConfig::default() },
    );
}
