//! Regenerates **§V-B.4**: integration of privacy-protection methods with
//! minimal accuracy impact.
//!
//! The paper (CIFAR-10, ResNet-56, 100 agents, 100 rounds) reports:
//! 81.7% with distance-correlation protection (α = 0.5), 83.2% with patch
//! shuffling, 77.6% with differential privacy (Laplace, ε = 0.5, δ = 1e−5),
//! versus an unprotected baseline in the mid-80s at that round budget.
//!
//! We reproduce the *shape* — each defence costs a few accuracy points, DP
//! the most — with real gradient descent on the miniature synthetic task
//! (see DESIGN.md §2 for the substitution rationale).

use comdml_core::{RealFleetConfig, RealSplitFleet};
use comdml_privacy::{distance_correlation, LaplaceMechanism, PatchShuffler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: usize = 3;

fn baseline_config() -> RealFleetConfig {
    RealFleetConfig { num_agents: 4, seed: 11, ..RealFleetConfig::default() }
}

fn main() {
    println!("§V-B.4 — privacy integration (real training, miniature task, {ROUNDS} rounds)\n");

    // Unprotected baseline.
    let mut plain = RealSplitFleet::new(baseline_config());
    let base_report = plain.run(ROUNDS);
    let base_acc = base_report.final_accuracy();
    let (x, z) = plain.leakage_probe(96).expect("fleet has split agents");
    let base_dcor = distance_correlation(&x, &z).unwrap_or(0.0);
    println!(
        "{:<28} acc {:>5.1}%   dCor(x, z) {:.3}",
        "no protection",
        base_acc * 100.0,
        base_dcor
    );

    // Distance-correlation protection: noise at the cut (α = 0.5 scale).
    let mut dcor_fleet =
        RealSplitFleet::new(RealFleetConfig { activation_noise_std: 1.5, ..baseline_config() });
    let dcor_report = dcor_fleet.run(ROUNDS);
    let (x2, z2) = dcor_fleet.leakage_probe(96).expect("fleet has split agents");
    // The observable activation includes the protection noise.
    let noisy_z = {
        let mut rng = StdRng::seed_from_u64(99);
        z2.add(&comdml_tensor::Tensor::randn(z2.shape(), 1.5, &mut rng)).unwrap()
    };
    let protected_dcor = distance_correlation(&x2, &noisy_z).unwrap_or(0.0);
    println!(
        "{:<28} acc {:>5.1}%   dCor(x, z~) {:.3}   (paper: 81.7%)",
        "distance corr. (alpha 0.5)",
        dcor_report.final_accuracy() * 100.0,
        protected_dcor
    );

    // Patch shuffling on the inputs.
    let mut shuffle_fleet = RealSplitFleet::new(baseline_config());
    let shuffler = PatchShuffler::new(2);
    let mut rng = StdRng::seed_from_u64(5);
    shuffle_fleet.set_input_hook(Box::new(move |x| {
        shuffler.shuffle(x, &mut rng).unwrap_or_else(|| x.clone())
    }));
    let shuffle_report = shuffle_fleet.run(ROUNDS);
    println!(
        "{:<28} acc {:>5.1}%                       (paper: 83.2%)",
        "patch shuffling (2x2)",
        shuffle_report.final_accuracy() * 100.0
    );

    // Differential privacy on released parameters.
    let mut dp_fleet = RealSplitFleet::new(baseline_config());
    let mech = LaplaceMechanism::new(0.5, 0.08);
    let mut rng = StdRng::seed_from_u64(6);
    dp_fleet.set_param_hook(Box::new(move |params| mech.privatize(params, &mut rng)));
    let dp_report = dp_fleet.run(ROUNDS);
    println!(
        "{:<28} acc {:>5.1}%                       (paper: 77.6%)",
        "DP (Laplace, eps 0.5)",
        dp_report.final_accuracy() * 100.0
    );

    println!(
        "\nshape check: protections cost a few points, DP the most; \
         dCor drops under protection ({base_dcor:.3} -> {protected_dcor:.3})"
    );
}
