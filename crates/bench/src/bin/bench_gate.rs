//! CI perf-regression gate: compares freshly produced `BENCH_*.json`
//! records against the committed baselines and fails (exit code 1) when any
//! configuration's wall clock regressed beyond the tolerance.
//!
//! ```sh
//! cargo run --release --bin bench_gate -- \
//!     --baseline ci/bench-baselines --current target/experiments \
//!     --tolerance 0.25
//! ```
//!
//! The tolerance is a relative bound on wall-clock growth (0.25 = fail
//! above +25%); it can also come from the `BENCH_TOLERANCE` environment
//! variable, which is how the CI workflow makes it configurable without
//! editing this binary. Wall clock is compared per `(bench, mode)` entry.
//!
//! # Runner-normalized mode
//!
//! Committed baselines carry wall clocks from one machine; CI runners are
//! another. `--normalized` (or `BENCH_GATE_MODE=normalized`) divides every
//! entry's wall-clock growth by the *geometric mean growth across all
//! entries* — a single runner-speed scale — and gates on the residual. A
//! uniformly slower runner then passes untouched, while one configuration
//! regressing relative to the rest still fails. The trade-off is explicit:
//! a change that slows every benchmark by the same factor is invisible to
//! the normalized gate, which is why the absolute mode stays the default
//! for same-machine comparisons.
//!
//! # Throughput gate
//!
//! Wall clock alone can hide an event-engine regression: a change that
//! both halves the event count and doubles the per-event cost leaves wall
//! clock flat, and in normalized mode a queue that slowed down uniformly
//! is absorbed into the runner-speed scale. So every entry that records a
//! non-zero `events_processed` is additionally gated on events/s (derived
//! as `events_processed / wall_ms`): the gate fails when current
//! throughput falls below `baseline / (1 + tolerance)`, after the same
//! runner-speed normalization as the wall-clock gate.
//!
//! Simulated seconds must agree closely in either mode (they are
//! deterministic given the seed, so drift means the simulation changed,
//! not the machine); event counts and peak agents are reported for context
//! but only warn, since legitimate engine changes move them.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use comdml_bench::BenchRecord;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateMode {
    Absolute,
    Normalized,
}

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    tolerance: f64,
    mode: GateMode,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline_dir = PathBuf::from("ci/bench-baselines");
    let mut current_dir = PathBuf::from("target/experiments");
    let mut tolerance: Option<f64> = None;
    let mut mode: Option<GateMode> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline_dir = PathBuf::from(grab("--baseline")?),
            "--current" => current_dir = PathBuf::from(grab("--current")?),
            "--tolerance" => {
                tolerance =
                    Some(grab("--tolerance")?.parse().map_err(|e| format!("bad tolerance: {e}"))?)
            }
            "--normalized" => mode = Some(GateMode::Normalized),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let tolerance = match tolerance {
        Some(t) => t,
        None => match std::env::var("BENCH_TOLERANCE") {
            Ok(v) => v.parse().map_err(|e| format!("bad BENCH_TOLERANCE: {e}"))?,
            Err(_) => 0.25,
        },
    };
    if tolerance < 0.0 {
        return Err(format!("tolerance must be non-negative, got {tolerance}"));
    }
    let mode = match mode {
        Some(m) => m,
        None => match std::env::var("BENCH_GATE_MODE").as_deref() {
            Ok("normalized") => GateMode::Normalized,
            Ok("absolute") | Err(_) => GateMode::Absolute,
            Ok(other) => return Err(format!("bad BENCH_GATE_MODE {other:?}")),
        },
    };
    Ok(Args { baseline_dir, current_dir, tolerance, mode })
}

fn load(path: &Path) -> Result<BenchRecord, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    BenchRecord::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// One matched `(bench, mode)` measurement pair.
struct Matched {
    bench: String,
    mode: String,
    base_wall_ms: f64,
    cur_wall_ms: f64,
    base_events: u64,
    cur_events: u64,
    sim_drifted: Option<(f64, f64)>,
    events_moved: Option<(u64, u64)>,
    /// Per-phase wall-clock attribution of the current run (empty when
    /// the benchmark ran without observability). Context only — the gate
    /// verdict stays on total wall clock.
    cur_phases: Vec<(String, f64)>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            comdml_obs::error!("bench_gate", "{e}");
            return ExitCode::FAILURE;
        }
    };
    let entries = match std::fs::read_dir(&args.baseline_dir) {
        Ok(rd) => rd,
        Err(e) => {
            comdml_obs::error!("bench_gate", "read_dir {}: {e}", args.baseline_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut baselines: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        comdml_obs::error!(
            "bench_gate",
            "no BENCH_*.json baselines in {}",
            args.baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }

    // Pass 1: load and match every (bench, mode) pair across all records,
    // so the normalized mode can see the whole population at once.
    let mut matched: Vec<Matched> = Vec::new();
    let mut failed = false;
    for base_path in baselines {
        let file_name = base_path.file_name().expect("filtered above").to_os_string();
        let base = match load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                comdml_obs::error!("bench_gate", "{e}");
                failed = true;
                continue;
            }
        };
        let cur_path = args.current_dir.join(&file_name);
        let cur = match load(&cur_path) {
            Ok(r) => r,
            Err(e) => {
                comdml_obs::error!("bench_gate", "{e} (did the benchmark run?)");
                failed = true;
                continue;
            }
        };
        for be in &base.entries {
            let Some(ce) = cur.entries.iter().find(|c| c.mode == be.mode) else {
                comdml_obs::error!("bench_gate", "{} lost mode {:?}", cur_path.display(), be.mode);
                failed = true;
                continue;
            };
            let same_rounds = ce.rounds == be.rounds;
            matched.push(Matched {
                bench: base.bench.clone(),
                mode: be.mode.clone(),
                base_wall_ms: be.wall_ms,
                cur_wall_ms: ce.wall_ms,
                base_events: be.events_processed,
                cur_events: ce.events_processed,
                sim_drifted: (same_rounds
                    && (ce.sim_total_s - be.sim_total_s).abs()
                        > 1e-6 * be.sim_total_s.abs().max(1.0))
                .then_some((be.sim_total_s, ce.sim_total_s)),
                events_moved: (same_rounds && ce.events_processed != be.events_processed)
                    .then_some((be.events_processed, ce.events_processed)),
                cur_phases: ce.phases.clone(),
            });
        }
    }

    // The runner-speed scale: geometric mean of wall-clock growth across
    // every matched entry (1.0 in absolute mode).
    let scale = match args.mode {
        GateMode::Absolute => 1.0,
        GateMode::Normalized => {
            if matched.is_empty() {
                1.0
            } else {
                let log_sum: f64 = matched
                    .iter()
                    .map(|m| (m.cur_wall_ms / m.base_wall_ms.max(1e-9)).max(1e-9).ln())
                    .sum();
                (log_sum / matched.len() as f64).exp()
            }
        }
    };

    match args.mode {
        GateMode::Absolute => println!(
            "bench_gate: tolerance +{:.0}% against {}\n",
            args.tolerance * 100.0,
            args.baseline_dir.display()
        ),
        GateMode::Normalized => println!(
            "bench_gate: tolerance +{:.0}% against {}, runner-normalized \
             (speed scale {scale:.3}x)\n",
            args.tolerance * 100.0,
            args.baseline_dir.display()
        ),
    }
    println!(
        "{:<14} {:<16} {:>12} {:>12} {:>8} {:>8}  verdict",
        "bench", "mode", "base ms", "now ms", "ratio", "ev/s"
    );
    for m in &matched {
        let ratio = m.cur_wall_ms / m.base_wall_ms.max(1e-9) / scale;
        let wall_over = ratio > 1.0 + args.tolerance;
        // Throughput ratio > 1 means faster than baseline. Normalizing by
        // the runner-speed scale keeps a uniformly slower machine from
        // tripping it, exactly as for wall clock.
        let thr_ratio = (m.base_events > 0 && m.cur_events > 0).then(|| {
            let base = m.base_events as f64 / m.base_wall_ms.max(1e-9);
            let cur = m.cur_events as f64 / m.cur_wall_ms.max(1e-9);
            cur / base * scale
        });
        let thr_over = thr_ratio.is_some_and(|r| r < 1.0 / (1.0 + args.tolerance));
        let verdict = match (wall_over, thr_over) {
            (false, false) => "ok",
            (true, _) => "REGRESSION",
            (false, true) => "REGRESSION (events/s)",
        };
        println!(
            "{:<14} {:<16} {:>12.1} {:>12.1} {:>7.2}x {:>7}  {}",
            m.bench,
            m.mode,
            m.base_wall_ms,
            m.cur_wall_ms,
            ratio,
            thr_ratio.map_or_else(|| "-".into(), |r| format!("{r:.2}x")),
            verdict
        );
        if wall_over || thr_over {
            failed = true;
        }
        // Context-only drift notes: deterministic quantities moving means
        // the *simulation* changed, which is worth a look but is not a
        // perf regression.
        if let Some((b, c)) = m.sim_drifted {
            println!(
                "  note: {}::{} simulated seconds drifted {:.3} -> {:.3}",
                m.bench, m.mode, b, c
            );
        }
        if let Some((b, c)) = m.events_moved {
            println!("  note: {}::{} events {} -> {}", m.bench, m.mode, b, c);
        }
        // Phase attribution, when the current run carried it: where the
        // wall clock went, so a regression points at a subsystem instead
        // of a total.
        for (name, ms) in &m.cur_phases {
            println!(
                "  phase {:<22} {:>10.1} ms ({:>5.1}%)",
                name,
                ms,
                100.0 * ms / m.cur_wall_ms.max(1e-9)
            );
        }
    }
    if failed {
        comdml_obs::error!(
            "bench_gate",
            "FAILED (wall-clock or events/s regression beyond tolerance, or missing data)"
        );
        ExitCode::FAILURE
    } else {
        println!("\nbench_gate: ok");
        ExitCode::SUCCESS
    }
}
