//! Regenerates **Table II**: total training time to target accuracy with 10
//! heterogeneous agents on CIFAR-10 / CIFAR-100 / CINIC-10 (I.I.D. and
//! non-I.I.D.), comparing ComDML against Gossip Learning, BrainTorrent,
//! decentralized AllReduce and FedAvg.

use comdml_baselines::BaselineConfig;
use comdml_bench::{all_methods, fmt_s, row, table2_cells, world_for_dataset, Report};
use comdml_core::{time_to_accuracy, ComDmlConfig, LearningCurve};
use comdml_simnet::Topology;

fn main() {
    let k = 10;
    let widths = [16usize, 13, 13, 13, 13, 13, 13];
    let headers = [
        "Method",
        "C10 IID",
        "C10 non-IID",
        "C100 IID",
        "C100 non-IID",
        "CINIC IID",
        "CINIC non-IID",
    ];

    println!("Table II — training time (s) to target accuracy, 10 agents, ResNet-56");
    println!("targets: 90% / 85% / 65% / 60% / 75% / 65%\n");
    println!("{}", row(&headers.map(String::from), &widths));

    // method -> 6 cells
    let mut table: Vec<(String, Vec<f64>)> = Vec::new();
    for (spec, iid, target) in table2_cells() {
        let world = world_for_dataset(&spec, iid, k, 42, Topology::Full);
        let curve = LearningCurve::for_dataset(&spec.name, iid);
        let engines = all_methods(
            BaselineConfig::default(),
            ComDmlConfig { curve, ..ComDmlConfig::default() },
        );
        for mut engine in engines {
            let t = time_to_accuracy(engine.as_mut(), &world, &curve, target);
            match table.iter_mut().find(|(name, _)| *name == t.method) {
                Some((_, cells)) => cells.push(t.total_time_s),
                None => table.push((t.method.clone(), vec![t.total_time_s])),
            }
        }
    }

    let mut report = Report::new(
        "table2",
        &[
            "method",
            "c10_iid",
            "c10_noniid",
            "c100_iid",
            "c100_noniid",
            "cinic_iid",
            "cinic_noniid",
        ],
    );
    for (name, cells) in &table {
        let mut line = vec![name.clone()];
        line.extend(cells.iter().map(|&v| fmt_s(v)));
        println!("{}", row(&line, &widths));
        let mut csv = vec![name.clone()];
        csv.extend(cells.iter().map(|v| format!("{v:.0}")));
        report.row(&csv);
    }
    if let Ok(path) = report.write_default() {
        comdml_obs::info!("table2_baselines", "csv written to {}", path.display());
    }

    // Headline claim: reduction vs FedAvg and BrainTorrent on CIFAR-10 IID.
    let get = |name: &str| {
        table.iter().find(|(n, _)| n == name).map(|(_, cells)| cells[0]).expect("method present")
    };
    let comdml = get("ComDML");
    println!(
        "\nCIFAR-10 IID reductions: {:.0}% vs FedAvg, {:.0}% vs BrainTorrent (paper: 70% / 71%)",
        (1.0 - comdml / get("FedAvg")) * 100.0,
        (1.0 - comdml / get("BrainTorrent")) * 100.0,
    );
}
