//! Elastic-fleet stress test: 10,000 agents, 1,000 rounds of continuous
//! Poisson arrival / exponential-departure churn, driven end to end through
//! `FleetSim` (membership process → pairing → event round → staleness-aware
//! learning accounting) at the coarse event granularity.
//!
//! Emits both the human-readable summary and the machine-readable
//! `target/experiments/BENCH_fleet.json` the CI perf-regression gate
//! compares against `ci/bench-baselines/BENCH_fleet.json`.
//!
//! The headline configuration (semi-synchronous, 1,000 rounds) runs after a
//! two-run same-seed determinism check on a shorter prefix; the remaining
//! aggregation modes and a FedAvg barrier driven by the *same* membership
//! process run shorter sweeps for the mode-divergence comparison.
//!
//! ```sh
//! cargo run --release --bin fleet_churn
//! ```

use std::time::Instant;

use comdml_baselines::{BaselineConfig, FedAvg};
use comdml_bench::{BenchEntry, BenchRecord};
use comdml_core::{AggregationMode, ComDmlConfig, EventGranularity, FleetSim, RoundEngine};
use comdml_simnet::{ArrivalProcess, FleetConfig, SessionLifetime};

const AGENTS: usize = 10_000;
const ROUNDS: usize = 1_000;
const SEED: u64 = 42;
/// ~1 arrival/s against a 10,000-agent fleet with 10,000 s mean sessions:
/// the birth-death equilibrium sits at the initial size, with roughly 20
/// joins and 20 leaves per ~20 s round.
const ARRIVAL_RATE: f64 = 1.0;
const MEAN_SESSION_S: f64 = 10_000.0;

fn fleet(agents: usize) -> FleetConfig {
    FleetConfig::new(agents, SEED)
        .arrivals(ArrivalProcess::Poisson { rate_per_s: ARRIVAL_RATE * agents as f64 / 10_000.0 })
        .lifetime(SessionLifetime::Exponential { mean_s: MEAN_SESSION_S })
        .samples_per_agent(500)
        .batch_size(100)
        .max_agents(4 * agents)
}

fn config(mode: AggregationMode) -> ComDmlConfig {
    ComDmlConfig {
        churn: None, // membership churn is the subject; profiles stay fixed
        aggregation: mode,
        candidate_offloads: Some(vec![8, 16, 24, 32, 40, 48]),
        granularity: EventGranularity::Coarse,
        ..ComDmlConfig::default()
    }
}

/// Runs one mode and returns (report digest bits, entry).
fn run_mode(name: &str, mode: AggregationMode, agents: usize, rounds: usize) -> (u64, BenchEntry) {
    let mut sim = FleetSim::new(fleet(agents), config(mode));
    comdml_obs::metrics().reset();
    let start = Instant::now();
    let report = sim.run(rounds);
    let wall = start.elapsed();
    let phases = comdml_obs::metrics().snapshot().phase_totals();
    // Order-sensitive digest over the quantities that must reproduce.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        report.total_sim_s.to_bits(),
        report.effective_rounds.to_bits(),
        report.events_processed,
        report.peak_agents as u64,
        report.arrivals as u64,
        report.departures as u64,
    ] {
        digest = (digest ^ v).wrapping_mul(0x1000_0000_01b3);
    }
    println!(
        "{name:<16} {rounds:>4} rounds: sim {:>9.1}s, eff rounds {:>7.1} (factor {:.3}), \
         {:>9} events, peak {} agents, +{}/-{} churn, wall {:.2}s",
        report.total_sim_s,
        report.effective_rounds,
        report.rounds_factor,
        report.events_processed,
        report.peak_agents,
        report.arrivals,
        report.departures,
        wall.as_secs_f64()
    );
    (
        digest,
        BenchEntry {
            mode: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            events_processed: report.events_processed,
            peak_agents: report.peak_agents,
            sim_total_s: report.total_sim_s,
            rounds,
            phases,
        },
    )
}

fn main() {
    // Phase attribution for the bench record; spans observe the run and
    // never touch its RNG or event order, so the determinism gate below
    // still holds bit for bit.
    comdml_obs::set_metrics_enabled(true);
    println!("fleet_churn: {AGENTS} agents, Poisson churn, coarse granularity\n");

    // Determinism gate: two same-seed runs of a shorter prefix must agree
    // bit for bit before the headline numbers mean anything.
    let semi = AggregationMode::SemiSynchronous { quorum: 0.8, staleness_s: f64::MAX };
    let (d1, _) = run_mode("determinism_a", semi, AGENTS, 100);
    let (d2, _) = run_mode("determinism_b", semi, AGENTS, 100);
    assert_eq!(d1, d2, "same-seed fleet runs must reproduce exactly");
    println!("determinism: ok (digest {d1:016x})\n");

    let mut record = BenchRecord::new("fleet", AGENTS, ROUNDS);

    // Headline: the full 1,000-round churn simulation.
    let (_, entry) = run_mode("semi_sync_q80", semi, AGENTS, ROUNDS);
    record.push(entry);

    // Mode divergence on a shorter sweep.
    for (name, mode) in [
        ("synchronous", AggregationMode::Synchronous),
        ("asynchronous", AggregationMode::Asynchronous),
    ] {
        let (_, entry) = run_mode(name, mode, AGENTS, ROUNDS / 4);
        record.push(entry);
    }

    // FedAvg barrier under the *same* membership process: same seed, same
    // arrival/departure timeline, round boundaries at FedAvg's own pace.
    // Slot recycling keeps the 1000-round barrier run from saturating
    // `max_agents` and silently dropping arrivals (FedAvg rounds are far
    // longer than ComDML's, so its world sees many more sessions).
    {
        let mut fa = FedAvg::new(BaselineConfig { churn: None, ..BaselineConfig::default() });
        let mut driver = fleet(AGENTS).recycle_slots(true).build();
        let rounds = ROUNDS / 4;
        let start = Instant::now();
        let mut sim_total = 0.0f64;
        let mut horizon = 30.0;
        for r in 0..rounds {
            let plan = driver.begin_round(horizon);
            let t = fa.round_time_for(driver.world(), r, &plan.participants);
            driver.end_round(t);
            sim_total += t;
            horizon = (t * 2.0).max(1.0);
        }
        let wall = start.elapsed();
        println!(
            "{:<16} {rounds:>4} rounds: sim {:>9.1}s, peak {} agents, +{}/-{} churn, \
             {} slots recycled, {} arrivals dropped, wall {:.2}s",
            "fedavg_barrier",
            sim_total,
            driver.peak_active(),
            driver.arrivals_total(),
            driver.departures_total(),
            driver.slots_recycled(),
            driver.arrivals_dropped(),
            wall.as_secs_f64()
        );
        record.push(BenchEntry {
            mode: "fedavg_barrier".into(),
            wall_ms: wall.as_secs_f64() * 1e3,
            events_processed: 0,
            peak_agents: driver.peak_active(),
            sim_total_s: sim_total,
            rounds,
            phases: Vec::new(),
        });
    }

    match record.write_default() {
        Ok(path) => println!("\nbench record written to {}", path.display()),
        Err(e) => comdml_obs::error!("fleet_churn", "failed to write bench record: {e}"),
    }
}
