//! Regenerates **Table I**: 2-agent decentralized training with varying
//! layer offloading on CIFAR-10 / ResNet-56 to 90% accuracy.
//!
//! Setting 1: 2 CPUs + 0.25 CPUs over a 50 Mbps link.
//! Setting 2: 2 CPUs + 1 CPU over a 100 Mbps link.
//!
//! Columns per setting: fast-agent train time, communication time, combined
//! idle time and total training time (seconds), each totalled over the
//! rounds needed to reach the target accuracy.

use comdml_bench::{fmt_s, row};
use comdml_collective::AllReduceAlgorithm;
use comdml_core::{simulate_round, LearningCurve, Pairing, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{Adjacency, AgentId, AgentProfile, AgentState, World};

struct Setting {
    name: &'static str,
    slow_cpus: f64,
    fast_cpus: f64,
    link_mbps: f64,
}

fn world_for(setting: &Setting) -> World {
    // Two agents split CIFAR-10's 50k samples evenly, batch 100.
    let agents = vec![
        AgentState::new(
            AgentId(0),
            AgentProfile::new(setting.slow_cpus, setting.link_mbps),
            25_000,
            100,
        ),
        AgentState::new(
            AgentId(1),
            AgentProfile::new(setting.fast_cpus, setting.link_mbps),
            25_000,
            100,
        ),
    ];
    let adj = Adjacency::from_matrix(vec![vec![false, true], vec![true, false]]);
    World::from_parts(agents, adj, 0)
}

fn main() {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let estimator = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let rounds = LearningCurve::cifar10(true).rounds_to(0.90, 1.0) as f64;

    let settings = [
        Setting {
            name: "1st Setting (2 / 0.25 CPU, 50 Mbps)",
            slow_cpus: 0.25,
            fast_cpus: 2.0,
            link_mbps: 50.0,
        },
        Setting {
            name: "2nd Setting (2 / 1 CPU, 100 Mbps)",
            slow_cpus: 1.0,
            fast_cpus: 2.0,
            link_mbps: 100.0,
        },
    ];
    let offloads = [0usize, 1, 10, 19, 28, 37, 46, 55];
    let widths = [8usize, 10, 10, 10, 10];

    println!(
        "Table I — 2-agent training with varying layer offloading (ResNet-56, CIFAR-10 to 90%)"
    );
    println!("(times in simulated seconds over {rounds} rounds)\n");
    for setting in &settings {
        let world = world_for(setting);
        println!("{}", setting.name);
        println!(
            "{}",
            row(&["Layers", "Train", "Comm.", "Idle", "Total"].map(String::from), &widths)
        );
        let mut best = (f64::INFINITY, 0usize);
        for &m in &offloads {
            let pairings = if m == 0 {
                vec![
                    Pairing { slow: AgentId(0), fast: None, offload: 0, est_time_s: 0.0 },
                    Pairing { slow: AgentId(1), fast: None, offload: 0, est_time_s: 0.0 },
                ]
            } else {
                vec![Pairing {
                    slow: AgentId(0),
                    fast: Some(AgentId(1)),
                    offload: m,
                    est_time_s: 0.0,
                }]
            };
            let outcome = simulate_round(
                &world,
                &pairings,
                &estimator,
                &cal,
                AllReduceAlgorithm::HalvingDoubling,
            );
            let fast_train =
                outcome.agent_stats.iter().find(|s| s.id == AgentId(1)).map_or(0.0, |s| s.train_s);
            let comm = outcome.total_comm_s();
            let idle = outcome.total_idle_s();
            let total = outcome.round_s();
            if total < best.0 {
                best = (total, m);
            }
            println!(
                "{}",
                row(
                    &[
                        m.to_string(),
                        fmt_s(fast_train * rounds),
                        fmt_s(comm * rounds),
                        fmt_s(idle * rounds),
                        fmt_s(total * rounds),
                    ],
                    &widths
                )
            );
        }
        let no_offload = {
            let pairings = vec![
                Pairing { slow: AgentId(0), fast: None, offload: 0, est_time_s: 0.0 },
                Pairing { slow: AgentId(1), fast: None, offload: 0, est_time_s: 0.0 },
            ];
            simulate_round(&world, &pairings, &estimator, &cal, AllReduceAlgorithm::HalvingDoubling)
                .round_s()
        };
        println!(
            "  -> optimum at {} layers: {:.0}% reduction vs no offloading\n",
            best.1,
            (1.0 - best.0 / no_offload) * 100.0
        );
    }
}
