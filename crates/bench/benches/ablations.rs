//! Wall-clock cost of the design alternatives the ablation study compares
//! (run `cargo run -p comdml-bench --bin ablation_study` for the
//! simulated-time ablations themselves).

use comdml_collective::Int8Quantizer;
use comdml_core::{PairingOrder, PairingScheduler, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{AgentId, WorldConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_orders(c: &mut Criterion) {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let scheduler = PairingScheduler::new();
    let world = WorldConfig::heterogeneous(50, 42).total_samples(250_000).build();
    let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();

    let mut group = c.benchmark_group("pairing_order_k50");
    for (name, order) in
        [("slowest_first", PairingOrder::SlowestFirst), ("by_agent_id", PairingOrder::ByAgentId)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, &order| {
            b.iter(|| black_box(scheduler.pair_with_order(&world, &ids, &est, order)))
        });
    }
    group.finish();
}

fn bench_candidate_restriction(c: &mut Criterion) {
    // Cost of estimating with all 56 splits vs the paper-style handful.
    let spec = ModelSpec::resnet56();
    let full = SplitProfile::new(&spec, 100);
    let restricted = full.restrict_to(&[10, 19, 28, 37, 46, 55]);
    let cal = CostCalibration::default();
    let world = WorldConfig::heterogeneous(20, 7).total_samples(100_000).build();
    let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
    let scheduler = PairingScheduler::new();

    let mut group = c.benchmark_group("candidate_splits_k20");
    for (name, profile) in [("all_56", &full), ("six_candidates", &restricted)] {
        let est = TrainingTimeEstimator::new(&spec, profile, &cal);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(scheduler.pair(&world, &ids, &est)))
        });
    }
    group.finish();
}

fn bench_quantizer(c: &mut Criterion) {
    let values: Vec<f32> = (0..850_000).map(|i| ((i % 97) as f32 - 48.0) / 17.0).collect();
    c.bench_function("int8_quantize_model_payload", |b| {
        b.iter(|| {
            let q = Int8Quantizer::fit(&values);
            black_box(q.dequantize(&q.quantize(&values)))
        })
    });
}

criterion_group!(benches, bench_orders, bench_candidate_restriction, bench_quantizer);
criterion_main!(benches);
