//! Collective throughput: ring vs recursive halving/doubling AllReduce over
//! in-memory buffers at model-payload sizes (§IV-B compares the two).

use comdml_collective::{halving_doubling_allreduce, naive_allreduce, ring_allreduce};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_bufs(k: usize, n: usize) -> Vec<Vec<f32>> {
    (0..k).map(|r| (0..n).map(|i| ((r * 31 + i) % 97) as f32).collect()).collect()
}

fn bench_allreduce(c: &mut Criterion) {
    let k = 8;
    let mut group = c.benchmark_group("allreduce_8_agents");
    for n in [10_000usize, 100_000, 850_000] {
        group.throughput(Throughput::Bytes((k * n * 4) as u64));
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| {
            b.iter_batched(
                || make_bufs(k, n),
                |mut bufs| {
                    ring_allreduce(&mut bufs).unwrap();
                    black_box(bufs)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("halving_doubling", n), &n, |b, &n| {
            b.iter_batched(
                || make_bufs(k, n),
                |mut bufs| {
                    halving_doubling_allreduce(&mut bufs).unwrap();
                    black_box(bufs)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter_batched(
                || make_bufs(k, n),
                |mut bufs| {
                    naive_allreduce(&mut bufs).unwrap();
                    black_box(bufs)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
