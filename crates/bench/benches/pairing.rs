//! Scheduler throughput: one full pairing round at fleet sizes 10–100.
//! The paper's scheduler must run every round on every agent, so its cost
//! has to stay negligible next to training time.

use comdml_core::{PairingScheduler, TrainingTimeEstimator};
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{AgentId, WorldConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pairing(c: &mut Criterion) {
    let spec = ModelSpec::resnet56();
    let profile = SplitProfile::new(&spec, 100);
    let cal = CostCalibration::default();
    let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
    let scheduler = PairingScheduler::new();

    let mut group = c.benchmark_group("pairing_round");
    for k in [10usize, 50, 100] {
        let world = WorldConfig::heterogeneous(k, 42).total_samples(5_000 * k).build();
        let ids: Vec<AgentId> = world.agents().iter().map(|a| a.id).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(scheduler.pair(&world, &ids, &est)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairing);
criterion_main!(benches);
