//! Training-engine kernels: convolution forward/backward, dense layers and
//! one full local-loss split step.

use comdml_nn::{models, Conv2d, Layer, LocalLossSplit, SgdPair};
use comdml_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(8, 8, 3, 1, 1, &mut rng);
    let x = Tensor::randn(&[8, 8, 8, 8], 1.0, &mut rng);
    c.bench_function("conv2d_forward_8x8x8", |b| b.iter(|| black_box(conv.forward(&x).unwrap())));
    let y = conv.forward(&x).unwrap();
    let g = Tensor::ones(y.shape());
    c.bench_function("conv2d_fwd_bwd_8x8x8", |b| {
        b.iter(|| {
            conv.forward(&x).unwrap();
            black_box(conv.backward(&g).unwrap())
        })
    });
}

fn bench_split_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let model = models::tiny_cnn(1, 4, &mut rng);
    let mut split = LocalLossSplit::from_sequential(model, 3, 4, &mut rng).unwrap();
    let mut opts = SgdPair::new(0.01, 0.9);
    let x = Tensor::randn(&[16, 1, 8, 8], 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    c.bench_function("local_loss_split_step_b16", |b| {
        b.iter(|| black_box(split.train_step(&x, &labels, &mut opts).unwrap()))
    });
}

fn bench_dense(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = models::mlp(&[256, 256, 64], &mut rng);
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    c.bench_function("mlp_forward_256x256_b32", |b| {
        b.iter(|| black_box(model.forward(&x).unwrap()))
    });
}

criterion_group!(benches, bench_conv, bench_split_step, bench_dense);
criterion_main!(benches);
