//! `AgentTrainingTime` cost: one estimate evaluates every candidate split
//! (56 for ResNet-56, 110 for ResNet-110). Run per neighbour per round on
//! every slow agent, this must stay in the microsecond range.

use comdml_core::TrainingTimeEstimator;
use comdml_cost::{CostCalibration, ModelSpec, SplitProfile};
use comdml_simnet::{AgentId, AgentProfile, AgentState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_estimator(c: &mut Criterion) {
    let cal = CostCalibration::default();
    let mut group = c.benchmark_group("agent_training_time");
    for spec in [ModelSpec::resnet56(), ModelSpec::resnet110()] {
        let profile = SplitProfile::new(&spec, 100);
        let est = TrainingTimeEstimator::new(&spec, &profile, &cal);
        let slow = AgentState::new(AgentId(0), AgentProfile::new(0.2, 50.0), 5000, 100);
        let fast = AgentState::new(AgentId(1), AgentProfile::new(4.0, 100.0), 5000, 100);
        let fast_solo = est.solo_time_s(&fast);
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name().to_string()),
            &spec,
            |b, _| b.iter(|| black_box(est.estimate(&slow, &fast, fast_solo, 50.0))),
        );
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    // Split-model profiling happens once before training (Algorithm 1).
    let spec = ModelSpec::resnet110();
    c.bench_function("split_profile_resnet110", |b| {
        b.iter(|| black_box(SplitProfile::new(&spec, 100)))
    });
}

criterion_group!(benches, bench_estimator, bench_profiling);
criterion_main!(benches);
