use crate::{Tensor, TensorError};

/// Flattens model parameters into a single contiguous vector and back.
///
/// Collective operations in the paper (AllReduce aggregation, §IV-B; gossip
/// averaging) exchange whole models as flat byte/float buffers. `ParamVec`
/// records the shapes of a parameter list so a model can be serialized into
/// one `Vec<f32>`, averaged across agents, and written back in place.
///
/// # Example
///
/// ```
/// use comdml_tensor::{ParamVec, Tensor};
///
/// let params = vec![Tensor::ones(&[2, 2]), Tensor::zeros(&[3])];
/// let pv = ParamVec::flatten(&params);
/// assert_eq!(pv.values().len(), 7);
/// let restored = pv.unflatten()?;
/// assert_eq!(restored[0], params[0]);
/// # Ok::<(), comdml_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamVec {
    values: Vec<f32>,
    shapes: Vec<Vec<usize>>,
}

impl ParamVec {
    /// Flattens a list of tensors into one contiguous vector, remembering
    /// each tensor's shape.
    pub fn flatten(params: &[Tensor]) -> Self {
        let mut values = Vec::with_capacity(params.iter().map(Tensor::len).sum());
        let mut shapes = Vec::with_capacity(params.len());
        for p in params {
            values.extend_from_slice(p.data());
            shapes.push(p.shape().to_vec());
        }
        Self { values, shapes }
    }

    /// Builds a `ParamVec` directly from a flat value buffer and shape list.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the buffer length does not
    /// equal the total element count of `shapes`.
    pub fn from_parts(values: Vec<f32>, shapes: Vec<Vec<usize>>) -> Result<Self, TensorError> {
        let expected: usize = shapes.iter().map(|s| s.iter().product::<usize>()).sum();
        if values.len() != expected {
            return Err(TensorError::ShapeMismatch { expected, actual: values.len() });
        }
        Ok(Self { values, shapes })
    }

    /// The flat parameter values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the flat parameter values (e.g. for in-place
    /// AllReduce or noise injection).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// The recorded per-tensor shapes.
    pub fn shapes(&self) -> &[Vec<usize>] {
        &self.shapes
    }

    /// Total number of scalar parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Size of the parameter payload in bytes when sent as `f32`s, the `b`
    /// of the paper's AllReduce cost `2 (K-1)/K · b`.
    pub fn byte_size(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }

    /// Reconstructs the original tensor list.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the internal buffer was
    /// resized to an inconsistent length via [`ParamVec::values_mut`].
    pub fn unflatten(&self) -> Result<Vec<Tensor>, TensorError> {
        let mut out = Vec::with_capacity(self.shapes.len());
        let mut offset = 0;
        for shape in &self.shapes {
            let n: usize = shape.iter().product();
            if offset + n > self.values.len() {
                return Err(TensorError::ShapeMismatch {
                    expected: offset + n,
                    actual: self.values.len(),
                });
            }
            out.push(Tensor::from_vec(self.values[offset..offset + n].to_vec(), shape)?);
            offset += n;
        }
        if offset != self.values.len() {
            return Err(TensorError::ShapeMismatch { expected: offset, actual: self.values.len() });
        }
        Ok(out)
    }

    /// Averages several parameter vectors element-wise, the model-aggregation
    /// step at the end of each ComDML round.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the vectors disagree in
    /// length. Returns an empty `ParamVec` if `vecs` is empty.
    pub fn average(vecs: &[Self]) -> Result<Self, TensorError> {
        let Some(first) = vecs.first() else {
            return Ok(Self { values: Vec::new(), shapes: Vec::new() });
        };
        let n = first.values.len();
        for v in vecs {
            if v.values.len() != n {
                return Err(TensorError::IncompatibleShapes {
                    op: "average",
                    lhs: vec![n],
                    rhs: vec![v.values.len()],
                });
            }
        }
        let mut values = vec![0.0f32; n];
        for v in vecs {
            for (acc, &x) in values.iter_mut().zip(v.values.iter()) {
                *acc += x;
            }
        }
        let inv = 1.0 / vecs.len() as f32;
        for acc in &mut values {
            *acc *= inv;
        }
        Ok(Self { values, shapes: first.shapes.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_unflatten_round_trip() {
        let params = vec![
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            Tensor::from_vec(vec![5.0, 6.0], &[2]).unwrap(),
        ];
        let pv = ParamVec::flatten(&params);
        assert_eq!(pv.len(), 6);
        assert_eq!(pv.byte_size(), 24);
        assert_eq!(pv.unflatten().unwrap(), params);
    }

    #[test]
    fn from_parts_validates() {
        assert!(ParamVec::from_parts(vec![0.0; 4], vec![vec![2, 2]]).is_ok());
        assert!(ParamVec::from_parts(vec![0.0; 3], vec![vec![2, 2]]).is_err());
    }

    #[test]
    fn average_is_elementwise_mean() {
        let a = ParamVec::from_parts(vec![1.0, 2.0], vec![vec![2]]).unwrap();
        let b = ParamVec::from_parts(vec![3.0, 6.0], vec![vec![2]]).unwrap();
        let avg = ParamVec::average(&[a, b]).unwrap();
        assert_eq!(avg.values(), &[2.0, 4.0]);
    }

    #[test]
    fn average_rejects_mismatched_lengths() {
        let a = ParamVec::from_parts(vec![1.0, 2.0], vec![vec![2]]).unwrap();
        let b = ParamVec::from_parts(vec![3.0], vec![vec![1]]).unwrap();
        assert!(ParamVec::average(&[a, b]).is_err());
    }

    #[test]
    fn average_of_empty_list_is_empty() {
        let avg = ParamVec::average(&[]).unwrap();
        assert!(avg.is_empty());
    }
}
