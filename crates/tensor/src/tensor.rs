use std::fmt;

use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A row-major dense tensor of `f32` values.
///
/// `Tensor` is the workhorse of the training engine: inputs, activations,
/// weights and gradients are all tensors. The shape is dynamic (a `Vec` of
/// dimension sizes) because split models cut networks at arbitrary layer
/// boundaries, so activation shapes are only known at runtime.
///
/// # Example
///
/// ```
/// use comdml_tensor::Tensor;
///
/// let x = Tensor::zeros(&[3, 4]);
/// assert_eq!(x.shape(), &[3, 4]);
/// assert_eq!(x.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch { expected, actual: data.len() });
        }
        Ok(Self { data, shape: shape.to_vec() })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { data: vec![0.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self { data: vec![1.0; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { data: vec![value; shape.iter().product()], shape: shape.to_vec() }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Samples a tensor from `N(0, std^2)` using the supplied RNG.
    ///
    /// Used for He/Xavier weight initialization in `comdml-nn`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let normal = rand::distributions::Uniform::new(0.0f32, 1.0f32);
        let n: usize = shape.iter().product();
        // Box-Muller transform: two uniforms -> one standard normal sample.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = normal.sample(rng).max(1e-12);
            let u2: f32 = normal.sample(rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { data, shape: shape.to_vec() }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch { expected, actual: self.data.len() });
        }
        Ok(Self { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * other`, the fused update step used by SGD.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                op: "axpy",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a copy scaled by a constant.
    pub fn scale(&self, alpha: f32) -> Self {
        Self { data: self.data.iter().map(|v| v * alpha).collect(), shape: self.shape.clone() }
    }

    /// Applies a function element-wise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Self { data: self.data.iter().map(|&v| f(v)).collect(), shape: self.shape.clone() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f32, TensorError> {
        if self.data.len() != other.data.len() {
            return Err(TensorError::IncompatibleShapes {
                op: "dot",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).sum())
    }

    /// The L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2,
    /// or [`TensorError::IncompatibleShapes`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.rank(),
            });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: other.rank(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data[i * k..(i + 1) * k];
            for (p, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(Self { data: out, shape: vec![m, n] })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Self, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Self { data: out, shape: vec![n, m] })
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for a bad row index.
    pub fn row(&self, i: usize) -> Result<Self, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "row", expected: 2, actual: self.rank() });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds { index: i, len: m });
        }
        Ok(Self { data: self.data[i * n..(i + 1) * n].to_vec(), shape: vec![n] })
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index. Used for classification argmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Self,
        op: &'static str,
        f: F,
    ) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(Self {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { expected: 6, actual: 5 });
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[4]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&v| v == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i3 = Tensor::eye(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(a.matmul(&b), Err(TensorError::IncompatibleShapes { op: "matmul", .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(v.matmul(&a), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.dot(&a).unwrap(), 30.0);
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let a = Tensor::from_vec(vec![0.0, 1.0, 1.0, 5.0, 2.0, 5.0], &[2, 3]).unwrap();
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn randn_has_expected_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn row_extraction() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap().data(), &[3.0, 4.0, 5.0]);
        assert!(a.row(2).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(&[4, 2]).is_err());
    }
}
