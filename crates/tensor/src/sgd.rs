use crate::{Tensor, TensorError};

/// Stochastic gradient descent with momentum, the optimizer used throughout
/// the paper's experiments (momentum 0.9, initial learning rate 1e-3, decay
/// on plateau — §V-A "Hyper-parameters").
///
/// The optimizer keeps one velocity buffer per parameter tensor and applies
/// the classic update
///
/// ```text
/// v ← μ·v + g
/// w ← w − η·v
/// ```
///
/// # Example
///
/// ```
/// use comdml_tensor::{SgdMomentum, Tensor};
///
/// let mut opt = SgdMomentum::new(0.1, 0.9);
/// let mut w = vec![Tensor::ones(&[2])];
/// let g = vec![Tensor::ones(&[2])];
/// opt.step(&mut w, &g)?;
/// assert!(w[0].data().iter().all(|&x| x < 1.0));
/// # Ok::<(), comdml_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl SgdMomentum {
    /// Creates an optimizer with the given learning rate and momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive, or `momentum` is outside
    /// `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive, got {lr}");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1), got {momentum}");
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (used by the plateau decay schedule).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Multiplies the learning rate by `factor`, the paper's decay-on-plateau
    /// schedule (factor 0.2 with 10 agents, 0.5 with 20/50/100 agents).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn decay(&mut self, factor: f32) {
        assert!(factor.is_finite() && factor > 0.0, "decay factor must be positive, got {factor}");
        self.lr *= factor;
    }

    /// Applies one SGD-with-momentum update to `params` given `grads`.
    ///
    /// Velocity buffers are created lazily on first use and matched to the
    /// parameter list by position.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if `params` and `grads`
    /// differ in arity or any pair differs in shape.
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) -> Result<(), TensorError> {
        if params.len() != grads.len() {
            return Err(TensorError::IncompatibleShapes {
                op: "sgd_step",
                lhs: vec![params.len()],
                rhs: vec![grads.len()],
            });
        }
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        }
        for ((w, g), v) in params.iter_mut().zip(grads.iter()).zip(self.velocity.iter_mut()) {
            if w.shape() != g.shape() {
                return Err(TensorError::IncompatibleShapes {
                    op: "sgd_step",
                    lhs: w.shape().to_vec(),
                    rhs: g.shape().to_vec(),
                });
            }
            // v <- mu * v + g
            let mut new_v = v.scale(self.momentum);
            new_v.axpy(1.0, g)?;
            *v = new_v;
            // w <- w - lr * v
            w.axpy(-self.lr, v)?;
        }
        Ok(())
    }

    /// Clears the velocity buffers (used after model aggregation replaces
    /// parameters wholesale).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_hand_computation() {
        // momentum ~ 0 behaves as plain SGD: w <- w - lr * g
        let mut opt = SgdMomentum::new(0.5, 0.0);
        let mut w = vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()];
        let g = vec![Tensor::from_vec(vec![2.0, -2.0], &[2]).unwrap()];
        opt.step(&mut w, &g).unwrap();
        assert_eq!(w[0].data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = SgdMomentum::new(1.0, 0.5);
        let mut w = vec![Tensor::zeros(&[1])];
        let g = vec![Tensor::ones(&[1])];
        opt.step(&mut w, &g).unwrap(); // v=1, w=-1
        opt.step(&mut w, &g).unwrap(); // v=1.5, w=-2.5
        assert!((w[0].data()[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn step_converges_on_quadratic() {
        // minimize f(w) = w^2; gradient 2w
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let mut w = vec![Tensor::from_vec(vec![5.0], &[1]).unwrap()];
        for _ in 0..200 {
            let g = vec![w[0].scale(2.0)];
            opt.step(&mut w, &g).unwrap();
        }
        assert!(w[0].data()[0].abs() < 1e-3);
    }

    #[test]
    fn step_rejects_mismatched_inputs() {
        let mut opt = SgdMomentum::new(0.1, 0.9);
        let mut w = vec![Tensor::zeros(&[2])];
        assert!(opt.step(&mut w, &[]).is_err());
        let g = vec![Tensor::zeros(&[3])];
        assert!(opt.step(&mut w, &g).is_err());
    }

    #[test]
    fn decay_scales_learning_rate() {
        let mut opt = SgdMomentum::new(0.1, 0.9);
        opt.decay(0.2);
        assert!((opt.learning_rate() - 0.02).abs() < 1e-8);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        let _ = SgdMomentum::new(0.0, 0.9);
    }

    #[test]
    fn reset_clears_velocity() {
        let mut opt = SgdMomentum::new(1.0, 0.9);
        let mut w = vec![Tensor::zeros(&[1])];
        let g = vec![Tensor::ones(&[1])];
        opt.step(&mut w, &g).unwrap();
        opt.reset();
        // After reset the next step must behave like the first.
        let mut w2 = vec![Tensor::zeros(&[1])];
        opt.step(&mut w2, &g).unwrap();
        assert_eq!(w2[0].data()[0], -1.0);
    }
}
