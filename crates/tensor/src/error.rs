use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// All shape-sensitive operations validate their inputs and report a
/// structured error instead of panicking, so schedulers embedding the
/// training engine can surface misconfiguration to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data.
    ShapeMismatch {
        /// Elements expected from the requested shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    IncompatibleShapes {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: Vec<usize>,
        /// Shape of the right operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the dimension indexed into.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements but data has {actual}")
            }
            TensorError::IncompatibleShapes { op, lhs, rhs } => {
                write!(f, "incompatible shapes for {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op} requires rank {expected} but tensor has rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of length {len}")
            }
        }
    }
}

impl Error for TensorError {}
