//! Dense tensor and optimizer substrate for the ComDML reproduction.
//!
//! The paper trains CNNs (ResNet-56/110) with SGD + momentum. This crate
//! provides the minimal-but-real numerical substrate that the `comdml-nn`
//! layers are built on: a row-major dense [`Tensor`] with the linear-algebra
//! kernels backpropagation needs, an [`SgdMomentum`] optimizer, and
//! [`ParamVec`] utilities for flattening model parameters into the contiguous
//! vectors that collective operations (AllReduce, gossip) exchange.
//!
//! # Example
//!
//! ```
//! use comdml_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), comdml_tensor::TensorError>(())
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod error;
mod param_vec;
mod sgd;
mod tensor;

pub use error::TensorError;
pub use param_vec::ParamVec;
pub use sgd::SgdMomentum;
pub use tensor::Tensor;
