//! Property-based tests for the tensor substrate.

use comdml_tensor::{ParamVec, SgdMomentum, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|v| (v * 100.0).round() / 100.0)
}

fn tensor_with_len(len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(finite_f32(), len)
        .prop_map(move |data| Tensor::from_vec(data, &[len]).expect("length matches"))
}

proptest! {
    #[test]
    fn addition_is_commutative(
        (a, b) in (1usize..48).prop_flat_map(|n| (tensor_with_len(n), tensor_with_len(n)))
    ) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn subtraction_then_addition_round_trips(
        (a, b) in (1usize..48).prop_flat_map(|n| (tensor_with_len(n), tensor_with_len(n)))
    ) {
        let c = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in c.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn scale_is_linear(a in (1usize..48).prop_flat_map(tensor_with_len), k in -10.0f32..10.0) {
        let scaled = a.scale(k);
        for (s, x) in scaled.data().iter().zip(a.data().iter()) {
            prop_assert!((s - k * x).abs() <= 1e-4 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn matmul_identity_is_noop(rows in 1usize..8, cols in 1usize..8, seed in 0u64..u64::MAX) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let out = a.matmul(&Tensor::eye(cols)).unwrap();
        prop_assert_eq!(out, a);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..u64::MAX) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn flatten_unflatten_round_trips(
        shapes in prop::collection::vec((1usize..5, 1usize..5), 1..6),
        seed in 0u64..u64::MAX,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params: Vec<Tensor> = shapes
            .iter()
            .map(|&(a, b)| {
                let data = (0..a * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
                Tensor::from_vec(data, &[a, b]).unwrap()
            })
            .collect();
        let pv = ParamVec::flatten(&params);
        prop_assert_eq!(pv.unflatten().unwrap(), params);
    }

    #[test]
    fn param_average_bounded_by_extremes(
        n in 1usize..32,
        k in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vecs: Vec<ParamVec> = (0..k)
            .map(|_| {
                let vals = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
                ParamVec::from_parts(vals, vec![vec![n]]).unwrap()
            })
            .collect();
        let avg = ParamVec::average(&vecs).unwrap();
        for i in 0..n {
            let lo = vecs.iter().map(|v| v.values()[i]).fold(f32::INFINITY, f32::min);
            let hi = vecs.iter().map(|v| v.values()[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg.values()[i] >= lo - 1e-4 && avg.values()[i] <= hi + 1e-4);
        }
    }

    #[test]
    fn sgd_with_zero_gradient_is_identity(
        n in 1usize..16,
        lr in 0.001f32..1.0,
        momentum in 0.0f32..0.99,
        seed in 0u64..u64::MAX,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut w = vec![Tensor::from_vec(data.clone(), &[n]).unwrap()];
        let g = vec![Tensor::zeros(&[n])];
        let mut opt = SgdMomentum::new(lr, momentum);
        opt.step(&mut w, &g).unwrap();
        prop_assert_eq!(w[0].data(), &data[..]);
    }
}
