use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_distr::{Dirichlet, Distribution};

/// Splits sample indices evenly and randomly across `k` agents — the
/// I.I.D. setting.
///
/// Every sample is assigned to exactly one agent; shares differ by at most
/// one sample.
///
/// # Panics
///
/// Panics if `k` is zero.
///
/// # Example
///
/// ```
/// let labels = vec![0usize; 10];
/// let parts = comdml_data::iid_partition(labels.len(), 3, 7);
/// let total: usize = parts.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
pub fn iid_partition(num_samples: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one agent");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..num_samples).collect();
    indices.shuffle(&mut rng);
    let mut parts = vec![Vec::with_capacity(num_samples / k + 1); k];
    for (i, idx) in indices.into_iter().enumerate() {
        parts[i % k].push(idx);
    }
    parts
}

/// Label-distribution-skew partitioner using a Dirichlet prior — the paper's
/// non-I.I.D. generator ("a fixed Dirichlet distribution (concentration
/// parameter = 0.5)", §V-A).
///
/// For each class, a Dirichlet(α) draw over the `k` agents decides what
/// fraction of that class's samples each agent receives.
#[derive(Debug, Clone, Copy)]
pub struct DirichletPartitioner {
    alpha: f64,
    seed: u64,
}

impl DirichletPartitioner {
    /// Creates a partitioner with concentration `alpha` (0.5 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f64, seed: u64) -> Self {
        assert!(alpha > 0.0, "Dirichlet concentration must be positive, got {alpha}");
        Self { alpha, seed }
    }

    /// The concentration parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Partitions `labels` (one per sample) across `k` agents.
    ///
    /// Every sample lands on exactly one agent. Agents may receive zero
    /// samples of some classes — that is the point of label skew.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn partition(&self, labels: &[usize], k: usize) -> Vec<Vec<usize>> {
        assert!(k > 0, "need at least one agent");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut parts = vec![Vec::new(); k];
        if k == 1 {
            parts[0] = (0..labels.len()).collect();
            return parts;
        }
        for class in 0..num_classes {
            let mut class_indices: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter_map(|(i, &y)| if y == class { Some(i) } else { None })
                .collect();
            class_indices.shuffle(&mut rng);
            let dir = Dirichlet::new_with_size(self.alpha, k).expect("valid alpha and k >= 2");
            let weights = dir.sample(&mut rng);
            // Convert weights into contiguous index ranges over the class.
            let n = class_indices.len();
            let mut cuts = Vec::with_capacity(k + 1);
            cuts.push(0usize);
            let mut acc = 0.0;
            for w in weights.iter().take(k - 1) {
                acc += w;
                cuts.push(((acc * n as f64).round() as usize).min(n));
            }
            cuts.push(n);
            for a in 0..k {
                let (lo, hi) = (cuts[a], cuts[a + 1].max(cuts[a]));
                parts[a].extend_from_slice(&class_indices[lo..hi]);
            }
        }
        parts
    }
}

/// Summary statistics of a partition, used to verify non-I.I.D.-ness.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Samples per agent.
    pub sizes: Vec<usize>,
    /// Per-agent label entropy in nats (low entropy = strong skew).
    pub label_entropies: Vec<f64>,
}

impl PartitionStats {
    /// Computes statistics of `parts` over `labels`.
    pub fn compute(parts: &[Vec<usize>], labels: &[usize]) -> Self {
        let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        let sizes = parts.iter().map(Vec::len).collect();
        let label_entropies = parts
            .iter()
            .map(|p| {
                if p.is_empty() {
                    return 0.0;
                }
                let mut counts = vec![0usize; num_classes];
                for &i in p {
                    counts[labels[i]] += 1;
                }
                let n = p.len() as f64;
                counts
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| {
                        let p = c as f64 / n;
                        -p * p.ln()
                    })
                    .sum()
            })
            .collect();
        Self { sizes, label_entropies }
    }

    /// Mean per-agent label entropy.
    pub fn mean_entropy(&self) -> f64 {
        if self.label_entropies.is_empty() {
            0.0
        } else {
            self.label_entropies.iter().sum::<f64>() / self.label_entropies.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn iid_covers_every_sample_once() {
        let parts = iid_partition(103, 4, 1);
        let mut seen = vec![false; 103];
        for p in &parts {
            for &i in p {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn dirichlet_covers_every_sample_once() {
        let y = labels(1000, 10);
        let parts = DirichletPartitioner::new(0.5, 3).partition(&y, 7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        let mut seen = vec![false; 1000];
        for p in &parts {
            for &i in p {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn dirichlet_is_deterministic() {
        let y = labels(500, 10);
        let a = DirichletPartitioner::new(0.5, 9).partition(&y, 5);
        let b = DirichletPartitioner::new(0.5, 9).partition(&y, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn low_alpha_skews_more_than_iid() {
        let y = labels(5000, 10);
        let noniid = DirichletPartitioner::new(0.5, 11).partition(&y, 10);
        let iid = iid_partition(5000, 10, 11);
        let s_noniid = PartitionStats::compute(&noniid, &y).mean_entropy();
        let s_iid = PartitionStats::compute(&iid, &y).mean_entropy();
        assert!(
            s_noniid < s_iid - 0.05,
            "Dirichlet(0.5) entropy {s_noniid} should be below IID entropy {s_iid}"
        );
    }

    #[test]
    fn very_low_alpha_is_extremely_skewed() {
        let y = labels(5000, 10);
        let parts = DirichletPartitioner::new(0.05, 13).partition(&y, 10);
        let stats = PartitionStats::compute(&parts, &y);
        // With alpha = 0.05 most agents see only a couple of classes.
        assert!(stats.mean_entropy() < 1.2, "entropy {}", stats.mean_entropy());
    }

    #[test]
    fn single_agent_gets_everything() {
        let y = labels(100, 10);
        let parts = DirichletPartitioner::new(0.5, 1).partition(&y, 1);
        assert_eq!(parts[0].len(), 100);
    }

    #[test]
    #[should_panic(expected = "concentration")]
    fn rejects_nonpositive_alpha() {
        let _ = DirichletPartitioner::new(0.0, 1);
    }
}
