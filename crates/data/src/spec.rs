use serde::{Deserialize, Serialize};

/// Metadata of a benchmark dataset — everything the scheduler and the
/// timing simulations need to know about the data.
///
/// # Example
///
/// ```
/// use comdml_data::DatasetSpec;
///
/// assert_eq!(DatasetSpec::cifar100().num_classes, 100);
/// assert_eq!(DatasetSpec::cinic10().train_samples, 90_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
}

impl DatasetSpec {
    /// CIFAR-10: 50 000 train images, 32×32×3, 10 classes.
    pub fn cifar10() -> Self {
        Self {
            name: "cifar10".into(),
            train_samples: 50_000,
            num_classes: 10,
            channels: 3,
            height: 32,
            width: 32,
        }
    }

    /// CIFAR-100: 50 000 train images, 32×32×3, 100 classes.
    pub fn cifar100() -> Self {
        Self { name: "cifar100".into(), num_classes: 100, ..Self::cifar10() }
    }

    /// CINIC-10: 90 000 train images, 32×32×3, 10 classes.
    pub fn cinic10() -> Self {
        Self { name: "cinic10".into(), train_samples: 90_000, ..Self::cifar10() }
    }

    /// A miniature dataset (8×8×1, 4 classes, 512 samples) sized so the real
    /// training engine converges in seconds — used by tests and examples.
    pub fn miniature() -> Self {
        Self {
            name: "miniature".into(),
            train_samples: 512,
            num_classes: 4,
            channels: 1,
            height: 8,
            width: 8,
        }
    }

    /// Elements per sample.
    pub fn sample_elems(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// The three paper datasets in evaluation order.
    pub fn paper_suite() -> Vec<DatasetSpec> {
        vec![Self::cifar10(), Self::cifar100(), Self::cinic10()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let c10 = DatasetSpec::cifar10();
        assert_eq!((c10.train_samples, c10.num_classes), (50_000, 10));
        assert_eq!(c10.sample_elems(), 3072);
        let c100 = DatasetSpec::cifar100();
        assert_eq!(c100.num_classes, 100);
        assert_eq!(c100.train_samples, 50_000);
        let cinic = DatasetSpec::cinic10();
        assert_eq!(cinic.train_samples, 90_000);
        assert_eq!(cinic.num_classes, 10);
    }

    #[test]
    fn suite_has_three_datasets() {
        assert_eq!(DatasetSpec::paper_suite().len(), 3);
    }

    #[test]
    fn miniature_is_small() {
        let m = DatasetSpec::miniature();
        assert!(m.train_samples <= 1024);
        assert_eq!(m.sample_elems(), 64);
    }
}
