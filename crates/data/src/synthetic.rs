use comdml_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DatasetSpec;

/// A learnable synthetic image classification task with CIFAR's tensor
/// layout.
///
/// Each class `c` owns a deterministic spatial pattern (a class-specific
/// frequency/phase grating); samples are the pattern plus Gaussian noise.
/// The task is easy enough for the miniature models in `comdml-nn` to reach
/// high accuracy in a few epochs, which is what the convergence experiments
/// need, yet non-trivial (noise, multiple classes, spatial structure).
///
/// # Example
///
/// ```
/// use comdml_data::{DatasetSpec, SyntheticImageDataset};
///
/// let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 42);
/// assert_eq!(ds.len(), 512);
/// let (x, y) = ds.batch(&[0, 1, 2]);
/// assert_eq!(x.shape(), &[3, 1, 8, 8]);
/// assert_eq!(y.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImageDataset {
    spec: DatasetSpec,
    images: Vec<f32>, // [n, c, h, w] flattened
    labels: Vec<usize>,
}

impl SyntheticImageDataset {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = spec.train_samples;
        let elems = spec.sample_elems();
        let mut images = Vec::with_capacity(n * elems);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.num_classes;
            labels.push(class);
            Self::write_sample(spec, class, &mut rng, &mut images);
        }
        Self { spec: spec.clone(), images, labels }
    }

    fn write_sample(spec: &DatasetSpec, class: usize, rng: &mut StdRng, out: &mut Vec<f32>) {
        // Class-specific grating: frequency and phase derive from the class.
        let freq = 1.0 + (class % 4) as f32;
        let phase = (class / 4) as f32 * std::f32::consts::FRAC_PI_2;
        let diag = if class.is_multiple_of(2) { 1.0 } else { -1.0 };
        for c in 0..spec.channels {
            for y in 0..spec.height {
                for x in 0..spec.width {
                    let u = x as f32 / spec.width as f32;
                    let v = y as f32 / spec.height as f32;
                    let signal = (2.0 * std::f32::consts::PI * freq * (u + diag * v) + phase).sin()
                        * (1.0 + 0.2 * c as f32);
                    let noise: f32 = rng.gen_range(-0.35..0.35);
                    out.push(signal + noise);
                }
            }
        }
    }

    /// The dataset spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels of all samples (used by partitioners).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a batch tensor `[len(indices), c, h, w]` plus labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let elems = self.spec.sample_elems();
        let mut data = Vec::with_capacity(indices.len() * elems);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range ({})", self.len());
            data.extend_from_slice(&self.images[i * elems..(i + 1) * elems]);
            labels.push(self.labels[i]);
        }
        let t = Tensor::from_vec(
            data,
            &[indices.len(), self.spec.channels, self.spec.height, self.spec.width],
        )
        .expect("batch assembly is shape-consistent");
        (t, labels)
    }

    /// Assembles a flattened batch `[len(indices), c*h*w]` for MLP models.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch_flat(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let (t, y) = self.batch(indices);
        let n = indices.len();
        let f = self.spec.sample_elems();
        (t.reshape(&[n, f]).expect("same element count"), y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::miniature();
        let a = SyntheticImageDataset::generate(&spec, 5);
        let b = SyntheticImageDataset::generate(&spec, 5);
        assert_eq!(a.labels(), b.labels());
        let (xa, _) = a.batch(&[0, 10]);
        let (xb, _) = b.batch(&[0, 10]);
        assert_eq!(xa, xb);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 1);
        assert_eq!(&ds.labels()[..5], &[0, 1, 2, 3, 0]);
        for c in 0..4 {
            let n = ds.labels().iter().filter(|&&y| y == c).count();
            assert_eq!(n, 128);
        }
    }

    #[test]
    fn classes_are_separable_by_mean_pattern() {
        // Samples of the same class must be closer to their class mean than
        // to other class means — the property a classifier exploits.
        let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 2);
        let elems = ds.spec().sample_elems();
        let mut means = vec![vec![0.0f32; elems]; 4];
        let mut counts = [0usize; 4];
        for i in 0..ds.len() {
            let (x, y) = ds.batch(&[i]);
            for (m, v) in means[y[0]].iter_mut().zip(x.data()) {
                *m += v;
            }
            counts[y[0]] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in (0..ds.len()).step_by(7) {
            let (x, y) = ds.batch(&[i]);
            let mut best = (f32::INFINITY, 0);
            for (c, m) in means.iter().enumerate() {
                let d: f32 = x.data().iter().zip(m.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == y[0] {
                correct += 1;
            }
        }
        let total = (0..ds.len()).step_by(7).count();
        assert!(correct as f32 / total as f32 > 0.9, "nearest-mean accuracy {correct}/{total}");
    }

    #[test]
    fn batch_flat_reshapes() {
        let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 3);
        let (x, _) = ds.batch_flat(&[0, 1]);
        assert_eq!(x.shape(), &[2, 64]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 4);
        let _ = ds.batch(&[100_000]);
    }
}
