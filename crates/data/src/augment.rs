use comdml_tensor::Tensor;
use rand::Rng;

/// Standard CIFAR-style training augmentations: random horizontal flip and
/// random shifted crop with zero padding — the preprocessing the paper's
/// ResNet experiments rely on to reach their accuracy targets.
///
/// # Example
///
/// ```
/// use comdml_data::Augmenter;
/// use comdml_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let aug = Augmenter::new(true, 2);
/// let x = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
/// let out = aug.apply(&x, &mut rng).unwrap();
/// assert_eq!(out.shape(), x.shape());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augmenter {
    flip: bool,
    max_shift: usize,
}

impl Augmenter {
    /// Creates an augmenter with optional horizontal flips and crops
    /// shifted by up to `max_shift` pixels.
    pub fn new(flip: bool, max_shift: usize) -> Self {
        Self { flip, max_shift }
    }

    /// The identity augmenter (useful for eval pipelines).
    pub fn none() -> Self {
        Self { flip: false, max_shift: 0 }
    }

    /// Applies independent augmentations per image of a `[b, c, h, w]`
    /// batch. Returns `None` for non-rank-4 inputs or shifts larger than
    /// the image.
    pub fn apply<R: Rng>(&self, images: &Tensor, rng: &mut R) -> Option<Tensor> {
        if images.rank() != 4 {
            return None;
        }
        let (b, c, h, w) =
            (images.shape()[0], images.shape()[1], images.shape()[2], images.shape()[3]);
        if self.max_shift >= h || self.max_shift >= w {
            return None;
        }
        let src = images.data();
        let mut out = vec![0.0f32; src.len()];
        for bi in 0..b {
            let flip = self.flip && rng.gen_bool(0.5);
            let (dy, dx) = if self.max_shift > 0 {
                (
                    rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize),
                    rng.gen_range(-(self.max_shift as isize)..=self.max_shift as isize),
                )
            } else {
                (0, 0)
            };
            for ci in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let sy = y as isize + dy;
                        let sx = x as isize + dx;
                        if sy < 0 || sy >= h as isize || sx < 0 || sx >= w as isize {
                            continue; // zero padding
                        }
                        let src_x = if flip { w - 1 - sx as usize } else { sx as usize };
                        out[((bi * c + ci) * h + y) * w + x] =
                            src[((bi * c + ci) * h + sy as usize) * w + src_x];
                    }
                }
            }
        }
        Some(Tensor::from_vec(out, images.shape()).expect("same shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_augmenter_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let out = Augmenter::none().apply(&x, &mut rng).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn flip_reverses_rows_for_some_images() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 1, 2, 2]).unwrap();
        // Flip-only augmenter: each image is either original or mirrored.
        let aug = Augmenter::new(true, 0);
        let mut saw_flip = false;
        for _ in 0..20 {
            let out = aug.apply(&x, &mut rng).unwrap();
            for bi in 0..2 {
                let base = bi * 4;
                let rowl = out.data()[base];
                if rowl == x.data()[base + 1] {
                    saw_flip = true;
                }
            }
        }
        assert!(saw_flip, "flips should occur about half the time");
    }

    #[test]
    fn shift_keeps_pixel_values_from_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::from_vec((0..36).map(|v| v as f32).collect(), &[1, 1, 6, 6]).unwrap();
        let out = Augmenter::new(false, 2).apply(&x, &mut rng).unwrap();
        // Every non-zero output value must exist in the input.
        for v in out.data() {
            assert!(*v == 0.0 || x.data().contains(v));
        }
    }

    #[test]
    fn oversized_shift_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(Augmenter::new(false, 4).apply(&x, &mut rng).is_none());
        assert!(Augmenter::new(false, 9).apply(&x, &mut rng).is_none());
        let v = Tensor::zeros(&[4]);
        assert!(Augmenter::none().apply(&v, &mut rng).is_none());
    }
}
