use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits an agent's sample indices into shuffled mini-batches — one local
/// epoch's worth of batches per call (the paper trains one local epoch per
/// round with batch size 100).
///
/// # Example
///
/// ```
/// use comdml_data::Batcher;
///
/// let mut b = Batcher::new((0..250).collect(), 100, 7);
/// let batches = b.epoch();
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches[0].len(), 100);
/// assert_eq!(batches[2].len(), 50); // remainder batch
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    indices: Vec<usize>,
    batch_size: usize,
    rng: StdRng,
}

impl Batcher {
    /// Creates a batcher over the agent's sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(indices: Vec<usize>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { indices, batch_size, rng: StdRng::seed_from_u64(seed) }
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }

    /// Number of samples owned by this batcher.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// Produces one epoch of shuffled batches. Each call reshuffles.
    pub fn epoch(&mut self) -> Vec<Vec<usize>> {
        self.indices.shuffle(&mut self.rng);
        self.indices.chunks(self.batch_size).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_covers_all_samples() {
        let mut b = Batcher::new((0..57).collect(), 10, 1);
        let batches = b.epoch();
        assert_eq!(batches.len(), 6);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_reshuffle() {
        let mut b = Batcher::new((0..100).collect(), 100, 2);
        let e1 = b.epoch();
        let e2 = b.epoch();
        assert_ne!(e1, e2, "two epochs should shuffle differently");
    }

    #[test]
    fn empty_batcher_yields_no_batches() {
        let mut b = Batcher::new(Vec::new(), 10, 3);
        assert!(b.epoch().is_empty());
        assert_eq!(b.batches_per_epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::new(vec![1], 0, 0);
    }
}
