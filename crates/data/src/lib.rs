//! Synthetic datasets and non-I.I.D. partitioning.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100 and CINIC-10 plus non-I.I.D.
//! variants generated with a Dirichlet label-skew (concentration 0.5,
//! §V-A "Dataset"). Real CIFAR images are not available offline, so this
//! crate provides:
//!
//! * [`DatasetSpec`] — the *metadata* of each benchmark dataset (sample
//!   counts, dimensions, class counts). The scheduler and the timing
//!   simulations only ever consume these numbers.
//! * [`SyntheticImageDataset`] — a learnable synthetic image task
//!   (class-conditional patterns + noise) with the same tensor layout as
//!   CIFAR, used by the *real-training* experiments to demonstrate
//!   convergence with actual gradients.
//! * [`DirichletPartitioner`] / [`iid_partition`] — the exact partitioning
//!   schemes of the paper.
//! * [`Batcher`] — mini-batch iteration (batch size 100 in the paper).
//!
//! # Example
//!
//! ```
//! use comdml_data::{DatasetSpec, DirichletPartitioner, SyntheticImageDataset};
//!
//! let spec = DatasetSpec::cifar10();
//! assert_eq!(spec.train_samples, 50_000);
//! let ds = SyntheticImageDataset::generate(&DatasetSpec::miniature(), 1);
//! let parts = DirichletPartitioner::new(0.5, 7).partition(ds.labels(), 4);
//! assert_eq!(parts.len(), 4);
//! ```
//!
//! Part of the `comdml-rs` workspace — the crate map in the repository
//! README shows how this crate fits the whole.

mod augment;
mod batcher;
mod partition;
mod spec;
mod synthetic;

pub use augment::Augmenter;
pub use batcher::Batcher;
pub use partition::{iid_partition, DirichletPartitioner, PartitionStats};
pub use spec::DatasetSpec;
pub use synthetic::SyntheticImageDataset;
